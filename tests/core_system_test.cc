// End-to-end tests of the PASSv2 core: kernel syscalls -> interceptor ->
// observer -> analyzer -> distributor -> Lasagna -> Waldo -> ProvDb,
// including the DPAPI disclosure path used by provenance-aware apps.

#include <gtest/gtest.h>

#include <set>

#include "src/core/libpass.h"
#include "src/workloads/machine.h"

namespace pass::core {
namespace {

using workloads::Machine;
using workloads::MachineOptions;

class CoreSystemTest : public ::testing::Test {
 protected:
  CoreSystemTest() : machine_(PassOptions()) {}

  static MachineOptions PassOptions() {
    MachineOptions options;
    options.with_pass = true;
    return options;
  }

  // True iff `descendant` transitively descends from `ancestor_pnode` in
  // the database (follows INPUT edges across versions).
  bool DescendsFrom(ObjectRef descendant, PnodeId ancestor_pnode) {
    std::set<ObjectRef> seen;
    std::vector<ObjectRef> stack{descendant};
    while (!stack.empty()) {
      ObjectRef ref = stack.back();
      stack.pop_back();
      if (!seen.insert(ref).second) {
        continue;
      }
      if (ref.pnode == ancestor_pnode) {
        return true;
      }
      for (const ObjectRef& input : machine_.db()->Inputs(ref)) {
        stack.push_back(input);
      }
      // Also walk the same object's earlier versions.
      for (Version v : machine_.db()->VersionsOf(ref.pnode)) {
        if (v < ref.version) {
          stack.push_back(ObjectRef{ref.pnode, v});
        }
      }
    }
    return false;
  }

  // Any version of the named file descends from any version of ancestor.
  bool FileDescendsFrom(const std::string& path, PnodeId ancestor) {
    for (PnodeId pnode : machine_.db()->PnodesByName(path)) {
      for (Version v : machine_.db()->VersionsOf(pnode)) {
        if (DescendsFrom(ObjectRef{pnode, v}, ancestor)) {
          return true;
        }
      }
    }
    return false;
  }

  Machine machine_;
};

TEST_F(CoreSystemTest, WriteCreatesFileToProcessEdge) {
  os::Pid pid = machine_.Spawn("writer");
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/out.txt", "payload").ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  auto pnodes = machine_.db()->PnodesByName("/out.txt");
  ASSERT_EQ(pnodes.size(), 1u);
  ObjectRef proc = machine_.pass()->RefOfPid(pid);
  EXPECT_TRUE(FileDescendsFrom("/out.txt", proc.pnode));
}

TEST_F(CoreSystemTest, ProcessRecordsReachDatabase) {
  os::Pid pid = machine_.Spawn("tool");
  ASSERT_TRUE(machine_.kernel()
                  .Exec(pid, "/bin/tool", {"tool", "--fast"}, {"HOME=/root"})
                  .ok());
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/out", "x").ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  ObjectRef proc = machine_.pass()->RefOfPid(pid);
  auto records = machine_.db()->RecordsOfAllVersions(proc.pnode);
  std::set<std::string> seen;
  for (const Record& record : records) {
    seen.insert(std::string(AttrName(record.attr)));
  }
  EXPECT_TRUE(seen.count("TYPE"));
  EXPECT_TRUE(seen.count("NAME"));
  EXPECT_TRUE(seen.count("PID"));
  EXPECT_TRUE(seen.count("ARGV"));
  EXPECT_TRUE(seen.count("ENV"));
}

TEST_F(CoreSystemTest, ReadThenWriteLinksInputToOutput) {
  os::Pid setup = machine_.Spawn("setup");
  ASSERT_TRUE(machine_.kernel().WriteFile(setup, "/input.dat", "in").ok());

  os::Pid worker = machine_.Spawn("worker");
  auto data = machine_.kernel().ReadFile(worker, "/input.dat");
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(machine_.kernel().WriteFile(worker, "/output.dat", *data).ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  auto in_pnodes = machine_.db()->PnodesByName("/input.dat");
  ASSERT_EQ(in_pnodes.size(), 1u);
  EXPECT_TRUE(FileDescendsFrom("/output.dat", in_pnodes[0]));
}

TEST_F(CoreSystemTest, PipelineFlowsThroughPipe) {
  // producer | consumer > /sink: the sink must descend from the producer
  // through the pipe object.
  os::Pid producer = machine_.Spawn("producer");
  auto fds = machine_.kernel().Pipe(producer);
  ASSERT_TRUE(fds.ok());
  auto [rfd, wfd] = *fds;
  ASSERT_TRUE(machine_.kernel().Write(producer, wfd, "stream").ok());

  auto consumer = machine_.kernel().Fork(producer);
  ASSERT_TRUE(consumer.ok());
  std::string buf;
  ASSERT_TRUE(machine_.kernel().Read(*consumer, rfd, 6, &buf).ok());
  ASSERT_TRUE(machine_.kernel().WriteFile(*consumer, "/sink", buf).ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  ObjectRef producer_ref = machine_.pass()->RefOfPid(producer);
  EXPECT_TRUE(FileDescendsFrom("/sink", producer_ref.pnode));
  // And a PIPE-typed object exists in the chain.
  bool pipe_seen = false;
  for (PnodeId pnode : machine_.db()->AllPnodes()) {
    for (const Record& record : machine_.db()->RecordsOfAllVersions(pnode)) {
      if (record.attr == Attr::kType &&
          std::get<std::string>(record.value) == "PIPE") {
        pipe_seen = true;
      }
    }
  }
  EXPECT_TRUE(pipe_seen);
}

TEST_F(CoreSystemTest, ForkChainsChildToParent) {
  os::Pid parent = machine_.Spawn("parent");
  auto child = machine_.kernel().Fork(parent);
  ASSERT_TRUE(child.ok());
  ASSERT_TRUE(machine_.kernel().WriteFile(*child, "/from-child", "x").ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  ObjectRef parent_ref = machine_.pass()->RefOfPid(parent);
  EXPECT_TRUE(FileDescendsFrom("/from-child", parent_ref.pnode));
}

TEST_F(CoreSystemTest, ExecBinaryBecomesAncestor) {
  os::Pid setup = machine_.Spawn("setup");
  ASSERT_TRUE(machine_.kernel().Mkdir(setup, "/bin").ok());
  ASSERT_TRUE(machine_.kernel().WriteFile(setup, "/bin/tool", "ELF").ok());
  os::Pid pid = machine_.Spawn("sh");
  ASSERT_TRUE(machine_.kernel().Exec(pid, "/bin/tool", {"tool"}).ok());
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/result", "out").ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  auto bin = machine_.db()->PnodesByName("/bin/tool");
  ASSERT_EQ(bin.size(), 1u);
  EXPECT_TRUE(FileDescendsFrom("/result", bin[0]));
}

TEST_F(CoreSystemTest, ReadModifyWriteCreatesVersions) {
  os::Pid pid = machine_.Spawn("rmw");
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/f", "v0").ok());
  for (int i = 0; i < 3; ++i) {
    auto data = machine_.kernel().ReadFile(pid, "/f");
    ASSERT_TRUE(data.ok());
    ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/f", *data + "+").ok());
  }
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  auto pnodes = machine_.db()->PnodesByName("/f");
  ASSERT_EQ(pnodes.size(), 1u);
  // The read-write ping-pong must have produced multiple versions.
  EXPECT_GT(machine_.db()->VersionsOf(pnodes[0]).size(), 1u);
  EXPECT_GT(machine_.pass()->analyzer_stats().freezes, 0u);
}

TEST_F(CoreSystemTest, RenamePreservesProvenanceAddsName) {
  os::Pid pid = machine_.Spawn("patcher");
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/f.tmp", "data").ok());
  auto before = machine_.pass()->RefOfPath("/f.tmp");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(machine_.kernel().Rename(pid, "/f.tmp", "/f").ok());
  auto after = machine_.pass()->RefOfPath("/f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->pnode, after->pnode);  // provenance follows the file
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  auto by_new_name = machine_.db()->PnodesByName("/f");
  ASSERT_EQ(by_new_name.size(), 1u);
  EXPECT_EQ(by_new_name[0], before->pnode);
}

TEST_F(CoreSystemTest, MkobjSyncPersistsApplicationObject) {
  os::Pid pid = machine_.Spawn("app");
  LibPass lib = machine_.Lib(pid);
  auto session = lib.Mkobj();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(lib.Write(*session, {Record::Type("SESSION"),
                                   Record::Of(Attr::kVisitedUrl,
                                              std::string("http://x/"))})
                  .ok());
  // Not yet an ancestor of anything persistent: sync forces it out (§5.2).
  ASSERT_TRUE(lib.Sync(*session).ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  auto sessions = machine_.db()->PnodesByType("SESSION");
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0], session->pnode);
}

TEST_F(CoreSystemTest, DiscloseFileWriteLinksApplicationObject) {
  os::Pid pid = machine_.Spawn("browser");
  LibPass lib = machine_.Lib(pid);
  auto session = lib.Mkobj();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(lib.Write(*session, {Record::Type("SESSION")}).ok());

  auto fd = machine_.kernel().Open(
      pid, "/download.bin", os::kOpenWrite | os::kOpenCreate);
  ASSERT_TRUE(fd.ok());
  auto session_ref = lib.Ref(*session);
  ASSERT_TRUE(session_ref.ok());
  auto n = lib.WriteFile(
      *fd, "GIF89a...",
      {Record::Input(*session_ref),
       Record::Of(Attr::kFileUrl, std::string("http://evil/codec.bin"))});
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(machine_.kernel().Close(pid, *fd).ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  EXPECT_TRUE(FileDescendsFrom("/download.bin", session->pnode));
  // The URL annotation must be queryable.
  bool url_seen = false;
  for (PnodeId pnode : machine_.db()->PnodesByName("/download.bin")) {
    for (const Record& record : machine_.db()->RecordsOfAllVersions(pnode)) {
      if (record.attr == Attr::kFileUrl) {
        url_seen = true;
      }
    }
  }
  EXPECT_TRUE(url_seen);
}

TEST_F(CoreSystemTest, DpapiReadReturnsExactIdentity) {
  os::Pid pid = machine_.Spawn("reader");
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/src", "contents").ok());
  auto fd = machine_.kernel().Open(pid, "/src", os::kOpenRead);
  ASSERT_TRUE(fd.ok());
  LibPass lib = machine_.Lib(pid);
  auto result = lib.Read(*fd, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->data, "contents");
  auto path_ref = machine_.pass()->RefOfPath("/src");
  ASSERT_TRUE(path_ref.ok());
  EXPECT_EQ(result->source.pnode, path_ref->pnode);
}

TEST_F(CoreSystemTest, ReviveObjRestoresHandle) {
  os::Pid pid = machine_.Spawn("firefox");
  LibPass lib = machine_.Lib(pid);
  auto session = lib.Mkobj();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(lib.Write(*session, {Record::Type("SESSION")}).ok());
  auto ref = lib.Ref(*session);
  ASSERT_TRUE(ref.ok());

  // "Restart" the application and revive the session object.
  os::Pid pid2 = machine_.Spawn("firefox-restarted");
  LibPass lib2 = machine_.Lib(pid2);
  auto revived = lib2.Revive(ref->pnode, ref->version);
  ASSERT_TRUE(revived.ok());
  ASSERT_TRUE(
      lib2.Write(*revived,
                 {Record::Of(Attr::kVisitedUrl, std::string("http://b/"))})
          .ok());
  ASSERT_TRUE(lib2.Sync(*revived).ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  auto records = machine_.db()->RecordsOfAllVersions(session->pnode);
  bool visited = false;
  for (const Record& record : records) {
    visited |= record.attr == Attr::kVisitedUrl;
  }
  EXPECT_TRUE(visited);
}

TEST_F(CoreSystemTest, DuplicateRecordsSuppressed) {
  os::Pid pid = machine_.Spawn("chatty");
  auto fd = machine_.kernel().Open(pid, "/log",
                                   os::kOpenWrite | os::kOpenCreate);
  ASSERT_TRUE(fd.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(machine_.kernel().Write(pid, *fd, "chunk").ok());
  }
  ASSERT_TRUE(machine_.kernel().Close(pid, *fd).ok());
  EXPECT_GT(machine_.pass()->analyzer_stats().duplicates_dropped, 40u);
}

TEST_F(CoreSystemTest, ObserverCountsEvents) {
  os::Pid pid = machine_.Spawn("events");
  ASSERT_TRUE(machine_.kernel().WriteFile(pid, "/a", "1").ok());
  (void)machine_.kernel().ReadFile(pid, "/a");
  auto fds = machine_.kernel().Pipe(pid);
  ASSERT_TRUE(fds.ok());
  ASSERT_TRUE(machine_.kernel().Exit(pid, 0).ok());
  const ObserverStats& stats = machine_.pass()->observer_stats();
  EXPECT_GE(stats.process_starts, 1u);
  EXPECT_GE(stats.writes, 1u);
  EXPECT_GE(stats.reads, 1u);
  EXPECT_GE(stats.pipes, 1u);
  EXPECT_GE(stats.exits, 1u);
  EXPECT_GE(stats.opens, 2u);
}

TEST_F(CoreSystemTest, PassRunIsSlowerThanVanilla) {
  // Sanity for Table 2's direction: the same workload on a vanilla machine
  // must be faster than on the PASS machine.
  Machine vanilla{MachineOptions{}};
  os::Pid vp = vanilla.Spawn("w");
  os::Pid pp = machine_.Spawn("w");
  for (int i = 0; i < 50; ++i) {
    std::string name = "/data" + std::to_string(i);
    std::string payload(4096, 'x');
    ASSERT_TRUE(vanilla.kernel().WriteFile(vp, name, payload).ok());
    ASSERT_TRUE(machine_.kernel().WriteFile(pp, name, payload).ok());
  }
  EXPECT_GT(machine_.elapsed_seconds(), vanilla.elapsed_seconds());
}

}  // namespace
}  // namespace pass::core
