// Tests for the federated query portal: frontier-shipped RPCs and the
// byte-bounded portal result cache, including its invalidation contract —
// every cached entry carries its owner shard's per-range mutation
// fingerprint, and lookups revalidate it, so the portal can never serve
// stale ownership or stale data while churn elsewhere leaves entries warm.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/federated_source.h"
#include "src/pql/eval.h"
#include "src/pql/provdb_source.h"

// Binary-wide counting allocator: the zero-alloc probe test asserts the
// warm cache-lookup path never reaches operator new. malloc stays the
// backing store, so sanitizer interception keeps working. (GCC flags
// free() of these pointers as mismatched because it cannot see through the
// replacement; the pairing is correct.)
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pass::cluster {

// Reaches the private cache internals so tests can drive the exact probe
// sequence AttributeMany/FollowMany use, without network or evaluator noise.
class FederatedSourceTestPeer {
 public:
  explicit FederatedSourceTestPeer(FederatedSource* source)
      : source_(source) {}
  uint32_t Intern(const std::string& attr) { return source_->InternAttr(attr); }
  void Validate() { source_->ValidateCache(); }
  bool ProbeAttr(core::PnodeId pnode, uint32_t attr_id) {
    return source_->CacheLookup(
               FederatedSource::CacheKey{pnode, 0, false, attr_id}) != nullptr;
  }
  bool ProbeEdges(const core::ObjectRef& ref, bool inverse) {
    return source_->CacheLookup(FederatedSource::CacheKey{
               ref.pnode, ref.version, inverse, 0}) != nullptr;
  }

 private:
  FederatedSource* source_;
};

namespace {

ClusterOptions SmallCluster(int shards) {
  ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = 16;
  return options;
}

// Chain /f0 -> /f1 -> ... striped round-robin over the first `spread`
// shards (all of them by default).
std::vector<core::ObjectRef> BuildCrossShardChain(ClusterCoordinator* cluster,
                                                  int files, int spread = 0) {
  if (spread == 0) {
    spread = cluster->shard_count();
  }
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(i % spread, "/f" + std::to_string(i),
                                         "payload", sources);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
  return refs;
}

std::multiset<std::string> RunQuery(pql::GraphSource* source,
                                    const std::string& query) {
  pql::Engine engine(source);
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  std::multiset<std::string> out;
  if (!result.ok()) {
    return out;
  }
  for (const auto& row : result->rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    out.insert(line);
  }
  return out;
}

std::multiset<std::string> MergedAnswer(ClusterCoordinator* cluster,
                                        const std::string& query) {
  waldo::ProvDb merged;
  cluster->MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  return RunQuery(&merged_source, query);
}

const char kTailClosure[] =
    "select Ancestor from Provenance.file as F F.input* as Ancestor "
    "where F.name = \"/f11\"";

TEST(FederatedCacheTest, RepeatedQueriesAreServedFromTheCache) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  auto first = RunQuery(&source, kTailClosure);
  EXPECT_EQ(first, MergedAnswer(&cluster, kTailClosure));
  uint64_t rpc_after_first = source.stats().remote_ops;
  uint64_t hits_after_first = source.stats().cache_hits;
  EXPECT_GT(rpc_after_first, 0u);
  EXPECT_GT(hits_after_first, 0u);  // the closure re-walks shared ancestry
  EXPECT_GT(source.cache_bytes_used(), 0u);

  // The same query again: every edge list and attribute set is cached, so
  // the only new RPCs are the (uncached) root-set scatter.
  auto second = RunQuery(&source, kTailClosure);
  EXPECT_EQ(second, first);
  uint64_t scatter = static_cast<uint64_t>(cluster.shard_count()) - 1;
  EXPECT_EQ(source.stats().remote_ops, rpc_after_first + scatter);
  EXPECT_GT(source.stats().cache_hits, hits_after_first);
}

// Satellite acceptance: a query warms the portal cache, MigrateRange moves
// the queried range, and the next query must observe the epoch bump and
// re-route to the new owner — federated == merged before and after.
TEST(FederatedCacheTest, MigrationInvalidatesWarmCacheAndReRoutes) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  auto before = RunQuery(&source, kTailClosure);
  EXPECT_EQ(before, MergedAnswer(&cluster, kTailClosure));
  EXPECT_GT(source.cache_bytes_used(), 0u);
  uint64_t invalidated = source.stats().cache_entries_invalidated;
  uint64_t epoch = cluster.shard_map().epoch();

  // Move the range holding /f5 (shard 1's space — a *remote* pnode whose
  // edge list and name set the portal cached) to shard 3.
  core::PnodeRange range{refs[5].pnode, refs[5].pnode + 1};
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  EXPECT_GT(cluster.shard_map().epoch(), epoch);  // epoch observed to bump
  EXPECT_EQ(cluster.OwnerOf(refs[5].pnode), 3);

  // Same source object, post-migration: entries in the migrated range are
  // dropped (and only those — no full flush) and the query re-routes
  // through the live map to the new owner.
  auto after = RunQuery(&source, kTailClosure);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, MergedAnswer(&cluster, kTailClosure));
  EXPECT_GT(source.stats().cache_entries_invalidated, invalidated);
  EXPECT_EQ(source.stats().cache_invalidations_full, 0u);
}

TEST(FederatedCacheTest, IngestInvalidatesStaleEdgeLists) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(cluster.WriteWithLineage(1, "/b", "bbb", {*a}).ok());
  ASSERT_TRUE(cluster.Sync().ok());

  const std::string descendants =
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/a\"";
  // Portal on shard 1: /a lives on shard 0, so its reverse-edge list is a
  // remote lookup the portal caches.
  FederatedSource source = cluster.Source(/*portal_shard=*/1);
  auto before = RunQuery(&source, descendants);
  EXPECT_EQ(before.size(), 2u);  // /a and /b

  // New lineage lands after the cache warmed: /c (on shard 1) descends from
  // /a. Sync mutates both shard databases; the portal must not serve the
  // cached pre-sync edge list.
  ASSERT_TRUE(cluster.WriteWithLineage(1, "/c", "ccc", {*a}).ok());
  ASSERT_TRUE(cluster.Sync().ok());
  auto after = RunQuery(&source, descendants);
  EXPECT_EQ(after.size(), 3u);
  EXPECT_EQ(after, MergedAnswer(&cluster, descendants));
}

TEST(FederatedCacheTest, TinyCacheEvictsButStaysCorrect) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0,
                                          /*cache_bytes=*/256);
  auto got = RunQuery(&source, kTailClosure);
  EXPECT_EQ(got, MergedAnswer(&cluster, kTailClosure));
  EXPECT_GT(source.stats().cache_evictions, 0u);
  EXPECT_LE(source.cache_bytes_used(), 256u);
}

TEST(FederatedCacheTest, ZeroBudgetDisablesCaching) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0,
                                          /*cache_bytes=*/0);
  auto got = RunQuery(&source, kTailClosure);
  EXPECT_EQ(got, MergedAnswer(&cluster, kTailClosure));
  EXPECT_EQ(source.stats().cache_hits, 0u);
  EXPECT_EQ(source.cache_bytes_used(), 0u);
}

// Tentpole acceptance: ingest that only touches a foreign shard must leave
// the portal's warm entries alone — the fingerprint check is per entry, so
// unrelated churn costs nothing. The legacy whole-cache mode drops
// everything on the same churn (the baseline fig9 measures against).
TEST(FederatedCacheTest, ForeignShardIngestKeepsWarmEntries) {
  ClusterCoordinator cluster(SmallCluster(4));
  // Chain over shards 0-2 only: shard 3 is pure churn, so no cached pnode
  // shares a fingerprint bucket with the churn writes.
  BuildCrossShardChain(&cluster, 12, /*spread=*/3);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource fine = cluster.Source(/*portal_shard=*/0);
  FederatedSource flush = cluster.Source(/*portal_shard=*/0);
  flush.set_whole_cache_invalidation(true);
  auto before = RunQuery(&fine, kTailClosure);
  EXPECT_EQ(before, RunQuery(&flush, kTailClosure));

  // Churn: new lineage-free files on shard 3 only. The chain's pnodes and
  // rows are untouched; only shard 3 buckets outside the chain move.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        cluster.WriteWithLineage(3, "/churn" + std::to_string(i), "x", {})
            .ok());
  }
  ASSERT_TRUE(cluster.Sync().ok());

  fine.ResetStats();
  flush.ResetStats();
  auto fine_after = RunQuery(&fine, kTailClosure);
  auto flush_after = RunQuery(&flush, kTailClosure);
  EXPECT_EQ(fine_after, before);
  EXPECT_EQ(flush_after, before);
  // Fine-grained: the warm entries survived — no invalidation of either
  // kind, and strictly fewer misses than the flushed baseline.
  EXPECT_EQ(fine.stats().cache_entries_invalidated, 0u);
  EXPECT_EQ(fine.stats().cache_invalidations_full, 0u);
  EXPECT_GT(flush.stats().cache_invalidations_full, 0u);
  EXPECT_LT(fine.stats().cache_misses, flush.stats().cache_misses);
}

// Ingest that *does* mutate a cached pnode's rows must drop exactly that
// entry via its fingerprint, even with no epoch bump anywhere.
TEST(FederatedCacheTest, FingerprintCatchesMutationOfCachedRange) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(cluster.Sync().ok());

  const std::string descendants =
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/a\"";
  FederatedSource source = cluster.Source(/*portal_shard=*/1);
  auto before = RunQuery(&source, descendants);
  EXPECT_EQ(before.size(), 1u);

  // /b descends from /a: replication inserts a reverse-index row keyed by
  // /a's pnode on shard 0, moving its bucket fingerprint.
  ASSERT_TRUE(cluster.WriteWithLineage(1, "/b", "bbb", {*a}).ok());
  ASSERT_TRUE(cluster.Sync().ok());
  auto after = RunQuery(&source, descendants);
  EXPECT_EQ(after.size(), 2u);
  EXPECT_EQ(after, MergedAnswer(&cluster, descendants));
  EXPECT_GT(source.stats().cache_entries_invalidated, 0u);
  EXPECT_EQ(source.stats().cache_invalidations_full, 0u);
}

// Satellite acceptance: probing a warm cache allocates nothing — the
// CacheKey is flat (interned attr id, no strings), the fingerprint check
// is a map lookup, and the LRU update is a splice.
TEST(FederatedCacheTest, WarmCacheProbesAreAllocationFree) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  RunQuery(&source, kTailClosure);  // warm every edge list + name set
  FederatedSourceTestPeer peer(&source);
  uint32_t name_id = peer.Intern("name");  // intern outside the counted loop
  uint64_t hits_before = source.stats().cache_hits;

  uint64_t allocs_before = g_heap_allocs;
  for (int round = 0; round < 8; ++round) {
    peer.Validate();
    for (const auto& ref : refs) {
      peer.ProbeAttr(ref.pnode, name_id);
      peer.ProbeEdges(ref, /*inverse=*/false);
    }
  }
  EXPECT_EQ(g_heap_allocs, allocs_before);
  EXPECT_GT(source.stats().cache_hits, hits_before);
}

TEST(FederatedCacheTest, CachedAndUncachedByteAccountingBalance) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  uint64_t net_before = cluster.network().stats().bytes_sent +
                        cluster.network().stats().bytes_received;
  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  RunQuery(&source, kTailClosure);
  uint64_t net_after = cluster.network().stats().bytes_sent +
                       cluster.network().stats().bytes_received;
  // Remote request/response bytes are exactly what hit the wire; local
  // bytes never did.
  EXPECT_EQ(net_after - net_before, source.stats().remote_request_bytes +
                                        source.stats().remote_response_bytes);
  EXPECT_GT(source.stats().local_bytes, 0u);
  EXPECT_GT(source.stats().remote_request_bytes, 0u);
  EXPECT_GT(source.stats().remote_response_bytes, 0u);
}

}  // namespace
}  // namespace pass::cluster
