// Tests for the federated query portal: frontier-shipped RPCs and the
// byte-bounded portal result cache, including its invalidation contract —
// a ShardMap epoch bump (migration/rebalance) or any shard mutation must
// drop every cached entry, so the portal can never serve stale ownership
// or stale data.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/federated_source.h"
#include "src/pql/eval.h"
#include "src/pql/provdb_source.h"

namespace pass::cluster {
namespace {

ClusterOptions SmallCluster(int shards) {
  ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = 16;
  return options;
}

std::vector<core::ObjectRef> BuildCrossShardChain(ClusterCoordinator* cluster,
                                                  int files) {
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(i % cluster->shard_count(),
                                         "/f" + std::to_string(i),
                                         "payload", sources);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
  return refs;
}

std::multiset<std::string> RunQuery(pql::GraphSource* source,
                                    const std::string& query) {
  pql::Engine engine(source);
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  std::multiset<std::string> out;
  if (!result.ok()) {
    return out;
  }
  for (const auto& row : result->rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    out.insert(line);
  }
  return out;
}

std::multiset<std::string> MergedAnswer(ClusterCoordinator* cluster,
                                        const std::string& query) {
  waldo::ProvDb merged;
  cluster->MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  return RunQuery(&merged_source, query);
}

const char kTailClosure[] =
    "select Ancestor from Provenance.file as F F.input* as Ancestor "
    "where F.name = \"/f11\"";

TEST(FederatedCacheTest, RepeatedQueriesAreServedFromTheCache) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  auto first = RunQuery(&source, kTailClosure);
  EXPECT_EQ(first, MergedAnswer(&cluster, kTailClosure));
  uint64_t rpc_after_first = source.stats().remote_ops;
  uint64_t hits_after_first = source.stats().cache_hits;
  EXPECT_GT(rpc_after_first, 0u);
  EXPECT_GT(hits_after_first, 0u);  // the closure re-walks shared ancestry
  EXPECT_GT(source.cache_bytes_used(), 0u);

  // The same query again: every edge list and attribute set is cached, so
  // the only new RPCs are the (uncached) root-set scatter.
  auto second = RunQuery(&source, kTailClosure);
  EXPECT_EQ(second, first);
  uint64_t scatter = static_cast<uint64_t>(cluster.shard_count()) - 1;
  EXPECT_EQ(source.stats().remote_ops, rpc_after_first + scatter);
  EXPECT_GT(source.stats().cache_hits, hits_after_first);
}

// Satellite acceptance: a query warms the portal cache, MigrateRange moves
// the queried range, and the next query must observe the epoch bump and
// re-route to the new owner — federated == merged before and after.
TEST(FederatedCacheTest, MigrationInvalidatesWarmCacheAndReRoutes) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  auto before = RunQuery(&source, kTailClosure);
  EXPECT_EQ(before, MergedAnswer(&cluster, kTailClosure));
  EXPECT_GT(source.cache_bytes_used(), 0u);
  uint64_t invalidations = source.stats().cache_invalidations;
  uint64_t epoch = cluster.shard_map().epoch();

  // Move the range holding /f4 and /f8 (shard 0's space) to shard 3.
  core::PnodeRange range{refs[4].pnode, refs[8].pnode + 1};
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  EXPECT_GT(cluster.shard_map().epoch(), epoch);  // epoch observed to bump
  EXPECT_EQ(cluster.OwnerOf(refs[4].pnode), 3);

  // Same source object, post-migration: the warm cache is dropped and the
  // query re-routes through the live map to the new owner.
  auto after = RunQuery(&source, kTailClosure);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, MergedAnswer(&cluster, kTailClosure));
  EXPECT_GT(source.stats().cache_invalidations, invalidations);
}

TEST(FederatedCacheTest, IngestInvalidatesStaleEdgeLists) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(cluster.WriteWithLineage(1, "/b", "bbb", {*a}).ok());
  ASSERT_TRUE(cluster.Sync().ok());

  const std::string descendants =
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/a\"";
  // Portal on shard 1: /a lives on shard 0, so its reverse-edge list is a
  // remote lookup the portal caches.
  FederatedSource source = cluster.Source(/*portal_shard=*/1);
  auto before = RunQuery(&source, descendants);
  EXPECT_EQ(before.size(), 2u);  // /a and /b

  // New lineage lands after the cache warmed: /c (on shard 1) descends from
  // /a. Sync mutates both shard databases; the portal must not serve the
  // cached pre-sync edge list.
  ASSERT_TRUE(cluster.WriteWithLineage(1, "/c", "ccc", {*a}).ok());
  ASSERT_TRUE(cluster.Sync().ok());
  auto after = RunQuery(&source, descendants);
  EXPECT_EQ(after.size(), 3u);
  EXPECT_EQ(after, MergedAnswer(&cluster, descendants));
}

TEST(FederatedCacheTest, TinyCacheEvictsButStaysCorrect) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0,
                                          /*cache_bytes=*/256);
  auto got = RunQuery(&source, kTailClosure);
  EXPECT_EQ(got, MergedAnswer(&cluster, kTailClosure));
  EXPECT_GT(source.stats().cache_evictions, 0u);
  EXPECT_LE(source.cache_bytes_used(), 256u);
}

TEST(FederatedCacheTest, ZeroBudgetDisablesCaching) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0,
                                          /*cache_bytes=*/0);
  auto got = RunQuery(&source, kTailClosure);
  EXPECT_EQ(got, MergedAnswer(&cluster, kTailClosure));
  EXPECT_EQ(source.stats().cache_hits, 0u);
  EXPECT_EQ(source.cache_bytes_used(), 0u);
}

TEST(FederatedCacheTest, CachedAndUncachedByteAccountingBalance) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  uint64_t net_before = cluster.network().stats().bytes_sent +
                        cluster.network().stats().bytes_received;
  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  RunQuery(&source, kTailClosure);
  uint64_t net_after = cluster.network().stats().bytes_sent +
                       cluster.network().stats().bytes_received;
  // Remote request/response bytes are exactly what hit the wire; local
  // bytes never did.
  EXPECT_EQ(net_after - net_before, source.stats().remote_request_bytes +
                                        source.stats().remote_response_bytes);
  EXPECT_GT(source.stats().local_bytes, 0u);
  EXPECT_GT(source.stats().remote_request_bytes, 0u);
  EXPECT_GT(source.stats().remote_response_bytes, 0u);
}

}  // namespace
}  // namespace pass::cluster
