// Tests for the distributor (§5.5): caching of non-persistent objects'
// provenance and ancestry-closure draining.

#include <gtest/gtest.h>

#include "src/core/distributor.h"

namespace pass::core {
namespace {

TEST(DistributorTest, CacheAndDrainSingleObject) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Type("PROC"));
  distributor.Cache(ObjectRef{1, 0}, Record::Name("make"));
  EXPECT_TRUE(distributor.HasCached(1));

  Bundle bundle;
  distributor.DrainClosure(1, &bundle);
  ASSERT_EQ(bundle.size(), 1u);
  EXPECT_EQ(bundle[0].target, (ObjectRef{1, 0}));
  EXPECT_EQ(bundle[0].records.size(), 2u);
  EXPECT_FALSE(distributor.HasCached(1));
}

TEST(DistributorTest, DrainGroupsByVersion) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Type("PROC"));
  distributor.Cache(ObjectRef{1, 1}, Record::Name("after-freeze"));
  Bundle bundle;
  distributor.DrainClosure(1, &bundle);
  ASSERT_EQ(bundle.size(), 2u);
  EXPECT_EQ(bundle[0].target.version, 0u);
  EXPECT_EQ(bundle[1].target.version, 1u);
}

TEST(DistributorTest, ClosureChasesCachedInputEdges) {
  // A shell pipeline: proc1 -> pipe -> proc2; when proc2's output reaches a
  // PASS volume, the whole chain must flush as one unit (§5.2).
  Distributor distributor;
  distributor.Cache(ObjectRef{30, 0}, Record::Type("PROC"));  // proc2
  distributor.Cache(ObjectRef{30, 0}, Record::Input(ObjectRef{20, 0}));
  distributor.Cache(ObjectRef{20, 0}, Record::Type("PIPE"));  // pipe
  distributor.Cache(ObjectRef{20, 0}, Record::Input(ObjectRef{10, 0}));
  distributor.Cache(ObjectRef{10, 0}, Record::Type("PROC"));  // proc1
  distributor.Cache(ObjectRef{99, 0}, Record::Type("PROC"));  // unrelated

  Bundle bundle;
  distributor.DrainClosure(30, &bundle);
  std::set<PnodeId> flushed;
  for (const BundleEntry& entry : bundle) {
    flushed.insert(entry.target.pnode);
  }
  EXPECT_EQ(flushed, (std::set<PnodeId>{10, 20, 30}));
  EXPECT_TRUE(distributor.HasCached(99));
  EXPECT_EQ(distributor.stats().objects_flushed, 3u);
}

TEST(DistributorTest, DrainOfUnknownObjectIsNoop) {
  Distributor distributor;
  Bundle bundle;
  distributor.DrainClosure(12345, &bundle);
  EXPECT_TRUE(bundle.empty());
}

TEST(DistributorTest, SecondDrainSeesOnlyNewRecords) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Type("PROC"));
  Bundle first;
  distributor.DrainClosure(1, &first);
  ASSERT_EQ(BundleRecordCount(first), 1u);

  distributor.Cache(ObjectRef{1, 1}, Record::Input(ObjectRef{2, 0}));
  Bundle second;
  distributor.DrainClosure(1, &second);
  ASSERT_EQ(BundleRecordCount(second), 1u);
  EXPECT_EQ(second[0].records[0].attr, Attr::kInput);
}

TEST(DistributorTest, DiscardDropsWithoutFlush) {
  Distributor distributor;
  distributor.Cache(ObjectRef{5, 0}, Record::Type("PROC"));
  distributor.Discard(5);
  EXPECT_FALSE(distributor.HasCached(5));
  EXPECT_EQ(distributor.stats().records_discarded, 1u);
  Bundle bundle;
  distributor.DrainClosure(5, &bundle);
  EXPECT_TRUE(bundle.empty());
}

TEST(DistributorTest, CyclicCachedEdgesTerminate) {
  // Defensive: even if cached INPUT records form a loop (stale versions),
  // closure draining terminates.
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Input(ObjectRef{2, 0}));
  distributor.Cache(ObjectRef{2, 0}, Record::Input(ObjectRef{1, 0}));
  Bundle bundle;
  distributor.DrainClosure(1, &bundle);
  EXPECT_EQ(BundleRecordCount(bundle), 2u);
}

TEST(DistributorTest, SelfLoopDrainsOnce) {
  Distributor distributor;
  distributor.Cache(ObjectRef{7, 0}, Record::Type("PROC"));
  distributor.Cache(ObjectRef{7, 0}, Record::Input(ObjectRef{7, 0}));
  Bundle bundle;
  distributor.DrainClosure(7, &bundle);
  ASSERT_EQ(bundle.size(), 1u);
  EXPECT_EQ(bundle[0].target, (ObjectRef{7, 0}));
  EXPECT_EQ(bundle[0].records.size(), 2u);
  EXPECT_EQ(distributor.stats().objects_flushed, 1u);
  EXPECT_FALSE(distributor.HasCached(7));
}

TEST(DistributorTest, CycleReachedThroughChainDrainsWholeLoop) {
  // 50 -> 40 -> {30 -> 20 -> 10 -> 30}: draining the chain head must pull
  // in the full cycle exactly once and leave nothing cached.
  Distributor distributor;
  distributor.Cache(ObjectRef{50, 0}, Record::Input(ObjectRef{40, 0}));
  distributor.Cache(ObjectRef{40, 0}, Record::Input(ObjectRef{30, 0}));
  distributor.Cache(ObjectRef{30, 0}, Record::Input(ObjectRef{20, 0}));
  distributor.Cache(ObjectRef{20, 0}, Record::Input(ObjectRef{10, 0}));
  distributor.Cache(ObjectRef{10, 0}, Record::Input(ObjectRef{30, 0}));
  distributor.Cache(ObjectRef{10, 0}, Record::Type("PROC"));

  Bundle bundle;
  distributor.DrainClosure(50, &bundle);
  std::set<PnodeId> flushed;
  size_t total_records = 0;
  for (const BundleEntry& entry : bundle) {
    flushed.insert(entry.target.pnode);
    total_records += entry.records.size();
  }
  EXPECT_EQ(flushed, (std::set<PnodeId>{10, 20, 30, 40, 50}));
  EXPECT_EQ(total_records, 6u);
  EXPECT_EQ(distributor.stats().objects_flushed, 5u);
  EXPECT_EQ(distributor.stats().records_flushed, 6u);
  EXPECT_EQ(distributor.CachedObjectCount(), 0u);

  // The cycle is gone: a second drain from inside it is a no-op.
  Bundle again;
  distributor.DrainClosure(30, &again);
  EXPECT_TRUE(again.empty());
}

TEST(DistributorTest, TwoEntryCycleFlushedRecordsCountedOnce) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Input(ObjectRef{2, 0}));
  distributor.Cache(ObjectRef{1, 0}, Record::Name("a"));
  distributor.Cache(ObjectRef{2, 0}, Record::Input(ObjectRef{1, 0}));
  distributor.Cache(ObjectRef{2, 0}, Record::Name("b"));
  Bundle bundle;
  distributor.DrainClosure(2, &bundle);
  EXPECT_EQ(BundleRecordCount(bundle), 4u);
  EXPECT_EQ(distributor.stats().records_flushed, 4u);
  EXPECT_EQ(distributor.stats().records_cached, 4u);
  // No duplicate bundle entries per (pnode, version).
  std::set<std::pair<PnodeId, Version>> seen;
  for (const BundleEntry& entry : bundle) {
    EXPECT_TRUE(
        seen.emplace(entry.target.pnode, entry.target.version).second);
  }
}

}  // namespace
}  // namespace pass::core
