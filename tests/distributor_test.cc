// Tests for the distributor (§5.5): caching of non-persistent objects'
// provenance and ancestry-closure draining.

#include <gtest/gtest.h>

#include "src/core/distributor.h"

namespace pass::core {
namespace {

TEST(DistributorTest, CacheAndDrainSingleObject) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Type("PROC"));
  distributor.Cache(ObjectRef{1, 0}, Record::Name("make"));
  EXPECT_TRUE(distributor.HasCached(1));

  Bundle bundle;
  distributor.DrainClosure(1, &bundle);
  ASSERT_EQ(bundle.size(), 1u);
  EXPECT_EQ(bundle[0].target, (ObjectRef{1, 0}));
  EXPECT_EQ(bundle[0].records.size(), 2u);
  EXPECT_FALSE(distributor.HasCached(1));
}

TEST(DistributorTest, DrainGroupsByVersion) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Type("PROC"));
  distributor.Cache(ObjectRef{1, 1}, Record::Name("after-freeze"));
  Bundle bundle;
  distributor.DrainClosure(1, &bundle);
  ASSERT_EQ(bundle.size(), 2u);
  EXPECT_EQ(bundle[0].target.version, 0u);
  EXPECT_EQ(bundle[1].target.version, 1u);
}

TEST(DistributorTest, ClosureChasesCachedInputEdges) {
  // A shell pipeline: proc1 -> pipe -> proc2; when proc2's output reaches a
  // PASS volume, the whole chain must flush as one unit (§5.2).
  Distributor distributor;
  distributor.Cache(ObjectRef{30, 0}, Record::Type("PROC"));  // proc2
  distributor.Cache(ObjectRef{30, 0}, Record::Input(ObjectRef{20, 0}));
  distributor.Cache(ObjectRef{20, 0}, Record::Type("PIPE"));  // pipe
  distributor.Cache(ObjectRef{20, 0}, Record::Input(ObjectRef{10, 0}));
  distributor.Cache(ObjectRef{10, 0}, Record::Type("PROC"));  // proc1
  distributor.Cache(ObjectRef{99, 0}, Record::Type("PROC"));  // unrelated

  Bundle bundle;
  distributor.DrainClosure(30, &bundle);
  std::set<PnodeId> flushed;
  for (const BundleEntry& entry : bundle) {
    flushed.insert(entry.target.pnode);
  }
  EXPECT_EQ(flushed, (std::set<PnodeId>{10, 20, 30}));
  EXPECT_TRUE(distributor.HasCached(99));
  EXPECT_EQ(distributor.stats().objects_flushed, 3u);
}

TEST(DistributorTest, DrainOfUnknownObjectIsNoop) {
  Distributor distributor;
  Bundle bundle;
  distributor.DrainClosure(12345, &bundle);
  EXPECT_TRUE(bundle.empty());
}

TEST(DistributorTest, SecondDrainSeesOnlyNewRecords) {
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Type("PROC"));
  Bundle first;
  distributor.DrainClosure(1, &first);
  ASSERT_EQ(BundleRecordCount(first), 1u);

  distributor.Cache(ObjectRef{1, 1}, Record::Input(ObjectRef{2, 0}));
  Bundle second;
  distributor.DrainClosure(1, &second);
  ASSERT_EQ(BundleRecordCount(second), 1u);
  EXPECT_EQ(second[0].records[0].attr, Attr::kInput);
}

TEST(DistributorTest, DiscardDropsWithoutFlush) {
  Distributor distributor;
  distributor.Cache(ObjectRef{5, 0}, Record::Type("PROC"));
  distributor.Discard(5);
  EXPECT_FALSE(distributor.HasCached(5));
  EXPECT_EQ(distributor.stats().records_discarded, 1u);
  Bundle bundle;
  distributor.DrainClosure(5, &bundle);
  EXPECT_TRUE(bundle.empty());
}

TEST(DistributorTest, CyclicCachedEdgesTerminate) {
  // Defensive: even if cached INPUT records form a loop (stale versions),
  // closure draining terminates.
  Distributor distributor;
  distributor.Cache(ObjectRef{1, 0}, Record::Input(ObjectRef{2, 0}));
  distributor.Cache(ObjectRef{2, 0}, Record::Input(ObjectRef{1, 0}));
  Bundle bundle;
  distributor.DrainClosure(1, &bundle);
  EXPECT_EQ(BundleRecordCount(bundle), 2u);
}

}  // namespace
}  // namespace pass::core
