// Tests for the cluster write-ahead journal (the durability spine): record
// codec and torn-tail classification, ClusterJournal append/scan/checkpoint,
// and the crash-consistency acceptance sweeps — a coordinator crash at
// *every* injected point of Sync() and MigrateRange() must recover to a
// state where federated queries equal the merged single-database view, no
// migrated row lives on two shards, and the ShardMap epoch is consistent.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/auditor.h"
#include "src/cluster/cluster.h"
#include "src/cluster/federated_source.h"
#include "src/cluster/journal.h"
#include "src/cluster/tamper.h"
#include "src/fs/memfs.h"
#include "src/lasagna/log_format.h"
#include "src/lasagna/recovery.h"
#include "src/pql/eval.h"
#include "src/pql/provdb_source.h"
#include "src/sim/disk.h"

namespace pass::cluster {
namespace {

using lasagna::JournalRecord;
using lasagna::JournalRecordType;
using lasagna::LogEntry;

// ---- Codec / scan units -----------------------------------------------------

std::vector<LogEntry> SampleEntries() {
  return {
      LogEntry{{(core::PnodeId{1} << 48) + 7, 0}, core::Record::Name("/x")},
      LogEntry{{(core::PnodeId{1} << 48) + 7, 0}, core::Record::Type("FILE")},
      LogEntry{{(core::PnodeId{0} << 48) + 3, 2},
               core::Record::Input({(core::PnodeId{1} << 48) + 7, 0})},
  };
}

TEST(JournalFormatTest, LogEntriesVectorCodecRoundTrip) {
  std::vector<LogEntry> entries = SampleEntries();
  std::string buf;
  lasagna::EncodeLogEntries(&buf, entries);
  auto decoded = lasagna::DecodeLogEntries(buf);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*decoded)[i].subject, entries[i].subject);
    EXPECT_EQ((*decoded)[i].record, entries[i].record);
  }
}

TEST(JournalFormatTest, JournalRecordRoundTrip) {
  std::string buf;
  lasagna::EncodeJournalRecord(
      &buf, JournalRecord{JournalRecordType::kReplBatch, 3, "payload"});
  lasagna::EncodeJournalRecord(
      &buf, JournalRecord{JournalRecordType::kReplApplied, 3, ""});
  bool truncated = true;
  auto records = lasagna::ParseJournal(buf, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].type, JournalRecordType::kReplBatch);
  EXPECT_EQ((*records)[0].id, 3u);
  EXPECT_EQ((*records)[0].payload, "payload");
  EXPECT_EQ((*records)[1].type, JournalRecordType::kReplApplied);
}

TEST(JournalFormatTest, TornTailKeepsValidPrefix) {
  std::string buf;
  lasagna::EncodeJournalRecord(
      &buf, JournalRecord{JournalRecordType::kMigrateBegin, 1, "abc"});
  lasagna::EncodeJournalRecord(
      &buf, JournalRecord{JournalRecordType::kMigrateCommit, 1, ""});
  bool truncated = false;
  auto records =
      lasagna::ParseJournal(std::string_view(buf).substr(0, buf.size() - 3),
                            &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, JournalRecordType::kMigrateBegin);
}

TEST(JournalFormatTest, CorruptFrameDetectedByCrc) {
  std::string buf;
  lasagna::EncodeJournalRecord(
      &buf, JournalRecord{JournalRecordType::kEpochBump, 9, "ranges"});
  buf[buf.size() - 2] ^= 0x20;
  bool truncated = false;
  auto records = lasagna::ParseJournal(buf, &truncated);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(records->empty());
}

class ClusterJournalTest : public ::testing::Test {
 protected:
  ClusterJournalTest()
      : env_(7),
        lower_(&env_, nullptr, {}, {}, {},
               fs::MemFsOptions{.charge_disk = false}) {}

  sim::Env env_;
  fs::MemFs lower_;
};

TEST_F(ClusterJournalTest, AppendScanRoundTrip) {
  ClusterJournal journal(&lower_);
  std::vector<LogEntry> entries = SampleEntries();
  uint64_t applied_batch = journal.AppendReplBatch(2, entries);
  journal.AppendReplApplied(applied_batch);
  uint64_t pending_batch = journal.AppendReplBatch(1, entries);
  core::PnodeRange range{core::ShardSpace(0).begin,
                         core::ShardSpace(0).begin + 100};
  journal.AppendMigrateBegin(5, range, 0, 1);
  journal.AppendEpochBump(1, 5, range, 1);
  journal.AppendMigrateCopied(5);

  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->truncated);
  ASSERT_EQ(state->batches.size(), 2u);
  EXPECT_TRUE(state->batches[0].applied);
  EXPECT_EQ(state->batches[0].destination, 2);
  EXPECT_EQ(state->batches[0].entries.size(), entries.size());
  EXPECT_FALSE(state->batches[1].applied);
  EXPECT_EQ(state->batches[1].id, pending_batch);
  ASSERT_EQ(state->migrations.size(), 1u);
  const JournalMigration& migration = state->migrations[0];
  EXPECT_EQ(migration.id, 5u);
  EXPECT_EQ(migration.range, range);
  EXPECT_EQ(migration.from, 0);
  EXPECT_EQ(migration.to, 1);
  EXPECT_TRUE(migration.epoch_bumped);
  EXPECT_EQ(migration.epoch, 1u);
  EXPECT_TRUE(migration.copied);
  EXPECT_FALSE(migration.committed);
  ASSERT_EQ(state->epoch_bumps.size(), 1u);
  EXPECT_EQ(state->epoch_bumps[0].migration_id, 5u);
  EXPECT_EQ(state->max_migration_id, 5u);
}

// Satellite acceptance: a crash mid-frame in the cluster journal must be
// detected via CRC and classified like a truncated log tail — the valid
// prefix survives, the torn record is dropped and counted.
TEST_F(ClusterJournalTest, TruncatedJournalTailDetectedAndClassified) {
  ClusterJournal journal(&lower_);
  uint64_t batch = journal.AppendReplBatch(1, SampleEntries());
  journal.AppendReplApplied(batch);
  journal.AppendMigrateBegin(9, core::ShardSpace(0), 0, 1);

  // The crash tears the last frame mid-payload.
  auto image = lower_.ReadFileRaw(journal.path());
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(lower_
                  .WriteFileRaw(journal.path(),
                                std::string_view(*image).substr(
                                    0, image->size() - 5))
                  .ok());

  auto scan = lasagna::ScanJournal(&lower_, journal.path());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->truncated);
  EXPECT_EQ(scan->records_scanned, 2u);  // the torn MIGRATE_BEGIN is gone

  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->truncated);
  ASSERT_EQ(state->batches.size(), 1u);
  EXPECT_TRUE(state->batches[0].applied);
  EXPECT_TRUE(state->migrations.empty());
}

TEST_F(ClusterJournalTest, CheckpointKeepsEpochHistoryAndPendingWork) {
  ClusterJournal journal(&lower_);
  uint64_t applied = journal.AppendReplBatch(1, SampleEntries());
  journal.AppendReplApplied(applied);
  uint64_t pending = journal.AppendReplBatch(2, SampleEntries());
  core::PnodeRange range = core::ShardSpace(0);
  journal.AppendMigrateBegin(1, range, 0, 1);
  journal.AppendEpochBump(1, 1, range, 1);
  journal.AppendMigrateCopied(1);
  journal.AppendMigrateCommit(1);
  journal.AppendMigrateBegin(2, range, 1, 2);

  ASSERT_TRUE(journal.Checkpoint().ok());
  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  // Applied batch and committed migration are gone; the epoch history, the
  // pending batch, and the in-flight migration survive.
  ASSERT_EQ(state->batches.size(), 1u);
  EXPECT_EQ(state->batches[0].id, pending);
  EXPECT_FALSE(state->batches[0].applied);
  ASSERT_EQ(state->migrations.size(), 1u);
  EXPECT_EQ(state->migrations[0].id, 2u);
  EXPECT_FALSE(state->migrations[0].committed);
  ASSERT_EQ(state->epoch_bumps.size(), 1u);
  EXPECT_EQ(state->epoch_bumps[0].epoch, 1u);

  // New batch ids keep rising after a checkpoint.
  EXPECT_GT(journal.AppendReplBatch(1, SampleEntries()), pending);
}

// ---- Group commit -----------------------------------------------------------

TEST_F(ClusterJournalTest, GroupCommitCoalescesAndDefersDurability) {
  ClusterJournal journal(&lower_);
  uint64_t solo = journal.AppendReplBatch(1, SampleEntries());

  journal.BeginGroup();
  EXPECT_TRUE(journal.InGroup());
  uint64_t first = journal.AppendReplBatch(2, SampleEntries());
  uint64_t second = journal.AppendReplBatch(0, SampleEntries());
  journal.AppendReplApplied(solo);

  // Nothing in the open group is durable yet: a scan sees only the solo
  // batch, still unapplied.
  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->batches.size(), 1u);
  EXPECT_EQ(state->batches[0].id, solo);
  EXPECT_FALSE(state->batches[0].applied);

  EXPECT_EQ(journal.CommitGroup(), 3u);
  EXPECT_FALSE(journal.InGroup());
  EXPECT_EQ(journal.group_commits(), 1u);
  EXPECT_EQ(journal.group_frames(), 3u);

  // The coalesced image parses as the individual records, in order.
  state = journal.Scan();
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->truncated);
  ASSERT_EQ(state->batches.size(), 3u);
  EXPECT_TRUE(state->batches[0].applied);  // solo's APPLIED rode the group
  EXPECT_EQ(state->batches[1].id, first);
  EXPECT_EQ(state->batches[2].id, second);
  EXPECT_FALSE(state->batches[1].applied);
  EXPECT_FALSE(state->batches[2].applied);
}

TEST_F(ClusterJournalTest, EmptyGroupCommitWritesNothing) {
  ClusterJournal journal(&lower_);
  journal.BeginGroup();
  EXPECT_EQ(journal.CommitGroup(), 0u);
  EXPECT_EQ(journal.group_commits(), 0u);
  EXPECT_EQ(journal.records_appended(), 0u);
}

TEST_F(ClusterJournalTest, AbortGroupDropsBufferedFrames) {
  ClusterJournal journal(&lower_);
  uint64_t solo = journal.AppendReplBatch(1, SampleEntries());
  uint64_t appended = journal.records_appended();

  // The recovery path: the buffered group died with the process.
  journal.BeginGroup();
  journal.AppendReplBatch(2, SampleEntries());
  journal.AppendReplApplied(solo);
  journal.AbortGroup();
  EXPECT_FALSE(journal.InGroup());
  EXPECT_EQ(journal.records_appended(), appended);

  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->batches.size(), 1u);
  EXPECT_FALSE(state->batches[0].applied);

  // The journal keeps working after the abort.
  journal.BeginGroup();
  journal.AppendReplApplied(solo);
  EXPECT_EQ(journal.CommitGroup(), 1u);
  state = journal.Scan();
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->batches[0].applied);
}

TEST_F(ClusterJournalTest, GroupCommitIsOneDiskWrite) {
  // The whole point of group commit: N frames, one charged disk access.
  sim::Env env(7);
  sim::Disk disk(&env.clock());
  sim::DiskZone journal_zone(0, 1 << 20);
  sim::DiskZone log_zone(1 << 20, 1 << 20);
  sim::DiskZone data_zone(2 << 20, 1 << 20);
  fs::MemFs charged(&env, &disk, data_zone, journal_zone, log_zone);
  ClusterJournal journal(&charged);

  journal.AppendReplBatch(1, SampleEntries());
  uint64_t solo_writes = disk.stats().writes;
  EXPECT_GT(solo_writes, 0u);

  journal.BeginGroup();
  for (int i = 0; i < 8; ++i) {
    journal.AppendReplBatch(i % 3, SampleEntries());
  }
  EXPECT_EQ(disk.stats().writes, solo_writes);  // still buffered
  EXPECT_EQ(journal.CommitGroup(), 8u);
  // Eight records cost the same number of disk writes as the one solo
  // append did.
  EXPECT_EQ(disk.stats().writes - solo_writes, solo_writes);
}

// Satellite acceptance: a coalesced multi-frame append cut mid-write must
// classify like any torn tail — the frames fully on disk survive, the torn
// one is dropped and flagged.
TEST_F(ClusterJournalTest, TornGroupCommitKeepsValidFramePrefix) {
  ClusterJournal journal(&lower_);
  journal.BeginGroup();
  uint64_t first = journal.AppendReplBatch(0, SampleEntries());
  uint64_t second = journal.AppendReplBatch(1, SampleEntries());
  journal.AppendReplBatch(2, SampleEntries());
  EXPECT_EQ(journal.CommitGroup(), 3u);

  // The crash tears the single coalesced write inside its third frame.
  auto image = lower_.ReadFileRaw(journal.path());
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(lower_
                  .WriteFileRaw(journal.path(),
                                std::string_view(*image).substr(
                                    0, image->size() - 5))
                  .ok());

  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->truncated);
  ASSERT_EQ(state->batches.size(), 2u);
  EXPECT_EQ(state->batches[0].id, first);
  EXPECT_EQ(state->batches[1].id, second);
}

// ---- Crash-consistency acceptance sweeps ------------------------------------

constexpr int kShards = 3;

ClusterOptions CrashClusterOptions() {
  ClusterOptions options;
  options.shards = kShards;
  options.ingest_batch_records = 4;  // several batches per sync
  return options;
}

// Cross-shard lineage between shards 0 and 1 only; shard 2 stays cold so a
// migration to it moves rows nothing was ever replicated to.
void RunChainWorkload(ClusterCoordinator* cluster, int files) {
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    int shard = i % 2;
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(shard, "/f" + std::to_string(i),
                                         "payload-" + std::to_string(i),
                                         sources);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
}

std::multiset<std::string> RunQuery(pql::GraphSource* source,
                                    const std::string& query) {
  pql::Engine engine(source);
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  std::multiset<std::string> out;
  if (!result.ok()) {
    return out;
  }
  for (const auto& row : result->rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    out.insert(line);
  }
  return out;
}

void ExpectFederatedMatchesMerged(ClusterCoordinator* cluster,
                                  const std::string& context) {
  waldo::ProvDb merged;
  cluster->MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  FederatedSource federated = cluster->Source(/*portal_shard=*/0);
  const char* const kQueries[] = {
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f7\"",
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/f0\"",
      "select F.name from Provenance.file as F",
  };
  for (const char* query : kQueries) {
    auto want = RunQuery(&merged_source, query);
    auto got = RunQuery(&federated, query);
    EXPECT_EQ(got, want) << context << ": " << query;
    EXPECT_FALSE(want.empty()) << context << ": " << query;
  }
}

// Crash points a clean Sync() passes on this workload. Deterministic: the
// sweep below replays the identical cluster for each index.
uint64_t CountSyncCrashPoints(int files) {
  ClusterCoordinator cluster(CrashClusterOptions());
  RunChainWorkload(&cluster, files);
  uint64_t before = cluster.env().crash_points_passed();
  EXPECT_TRUE(cluster.Sync().ok());
  return cluster.env().crash_points_passed() - before;
}

// Acceptance: crash mid-Sync at every injected point; recovery must restore
// federated == merged and leave a consistent epoch.
TEST(JournalCrashTest, SyncCrashAtEveryPointRecovers) {
  constexpr int kFiles = 8;
  uint64_t points = CountSyncCrashPoints(kFiles);
  ASSERT_GT(points, 4u);  // rotation, journal, send, apply, removal sites

  for (uint64_t point = 0; point < points; ++point) {
    ClusterCoordinator cluster(CrashClusterOptions());
    RunChainWorkload(&cluster, kFiles);
    cluster.env().CrashAfterOps(point);
    Status crashed = cluster.Sync();
    EXPECT_FALSE(crashed.ok()) << "point " << point;
    EXPECT_TRUE(cluster.env().crashed());

    auto recovery = cluster.Recover();
    ASSERT_TRUE(recovery.ok())
        << "point " << point << ": " << recovery.status().ToString();
    EXPECT_FALSE(cluster.env().crashed());
    EXPECT_EQ(recovery->shard_map_epoch, cluster.shard_map().epoch());
    ExpectFederatedMatchesMerged(
        &cluster, "sync crash at point " + std::to_string(point));

    // Recovery converged: a second pass finds nothing left to repair.
    auto again = cluster.Recover();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->batches_redelivered, 0u) << "point " << point;
    EXPECT_EQ(again->log_entries_resynced, 0u) << "point " << point;

    // The repaired cluster keeps working: more writes, another sync.
    auto extra = cluster.WriteWithLineage(0, "/post-crash", "x", {});
    ASSERT_TRUE(extra.ok());
    ASSERT_TRUE(cluster.Sync().ok());
  }
}

// Crash points a clean MigrateRange passes after the same workload + sync.
uint64_t CountMigrationCrashPoints(int files, core::PnodeRange* range_out) {
  ClusterCoordinator cluster(CrashClusterOptions());
  RunChainWorkload(&cluster, files);
  EXPECT_TRUE(cluster.Sync().ok());
  core::PnodeRange range{core::ShardSpace(0).begin,
                         cluster.machine(0).allocator().peek_next()};
  *range_out = range;
  uint64_t before = cluster.env().crash_points_passed();
  auto report = cluster.MigrateRange(range, 2);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return cluster.env().crash_points_passed() - before;
}

// Acceptance: crash between every pair of MigrateRange phases; after
// recovery the range's rows live on exactly one shard, the ShardMap epoch
// matches the journaled history, and federated queries equal the merged
// single-database view.
TEST(JournalCrashTest, MigrationCrashBetweenEveryPhaseRecovers) {
  constexpr int kFiles = 8;
  core::PnodeRange range{};
  uint64_t points = CountMigrationCrashPoints(kFiles, &range);
  ASSERT_GT(points, 4u);  // begin/bump/copy/copied/delete/commit sites

  for (uint64_t point = 0; point < points; ++point) {
    ClusterCoordinator cluster(CrashClusterOptions());
    RunChainWorkload(&cluster, kFiles);
    ASSERT_TRUE(cluster.Sync().ok());
    uint64_t epoch_before = cluster.shard_map().epoch();

    cluster.env().CrashAfterOps(point);
    auto crashed = cluster.MigrateRange(range, 2);
    EXPECT_FALSE(crashed.ok()) << "point " << point;

    auto recovery = cluster.Recover();
    ASSERT_TRUE(recovery.ok())
        << "point " << point << ": " << recovery.status().ToString();
    std::string context = "migration crash at point " + std::to_string(point);

    // The outcome is all-or-nothing: either the migration rolled forward
    // (epoch bumped, destination owns the range, source rows deleted) or it
    // aborted (nothing changed). Never rows on both shards.
    uint64_t rows_on_source =
        cluster.shard_db(0).RowsInRange(range.begin, range.end);
    uint64_t rows_on_destination =
        cluster.shard_db(2).RowsInRange(range.begin, range.end);
    int owner = cluster.shard_map().OwnerOfRange(range);
    EXPECT_TRUE(rows_on_source == 0 || rows_on_destination == 0) << context;
    EXPECT_GT(rows_on_source + rows_on_destination, 0u) << context;
    if (recovery->migrations_rolled_forward > 0) {
      EXPECT_EQ(owner, 2) << context;
      EXPECT_EQ(rows_on_source, 0u) << context;
      EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 1) << context;
    } else {
      // Aborted before the bump became durable (or before any record did):
      // the migration left no trace in the routed state.
      EXPECT_EQ(owner, 0) << context;
      EXPECT_EQ(rows_on_destination, 0u) << context;
      EXPECT_EQ(cluster.shard_map().epoch(), epoch_before) << context;
    }
    EXPECT_EQ(recovery->shard_map_epoch, cluster.shard_map().epoch())
        << context;
    ExpectFederatedMatchesMerged(&cluster, context);

    // Recovery converged: a second pass finds nothing left to repair (the
    // checkpoint dropped applied batches and closed aborted migrations).
    auto again = cluster.Recover();
    ASSERT_TRUE(again.ok()) << context;
    EXPECT_EQ(again->batches_redelivered, 0u) << context;
    EXPECT_EQ(again->migrations_rolled_forward, 0u) << context;
    EXPECT_EQ(again->migrations_aborted, 0u) << context;
    EXPECT_EQ(again->shard_map_epoch, recovery->shard_map_epoch) << context;

    // An aborted migration can simply be retried; a rolled-forward one is
    // already in place and retrying is a no-op move to the same owner.
    auto retry = cluster.MigrateRange(range, 2);
    ASSERT_TRUE(retry.ok()) << context;
    EXPECT_EQ(cluster.shard_map().OwnerOfRange(range), 2) << context;
    ExpectFederatedMatchesMerged(&cluster, context + " after retry");
  }
}

// A crash that tears the journal tail mid-frame composes with recovery: the
// torn record is classified and dropped, everything durable replays.
TEST(JournalCrashTest, RecoveryToleratesTornJournalTail) {
  ClusterCoordinator cluster(CrashClusterOptions());
  RunChainWorkload(&cluster, 8);
  // Crash just after the first journaled batch (REPL_BATCH durable, never
  // sent), then tear that journal's tail by a few bytes.
  uint64_t points = 0;
  {
    ClusterCoordinator twin(CrashClusterOptions());
    RunChainWorkload(&twin, 8);
    uint64_t before = twin.env().crash_points_passed();
    EXPECT_TRUE(twin.Sync().ok());
    points = twin.env().crash_points_passed() - before;
  }
  cluster.env().CrashAfterOps(points / 2);
  EXPECT_FALSE(cluster.Sync().ok());

  for (int shard = 0; shard < kShards; ++shard) {
    const std::string& path = cluster.journal(shard).path();
    fs::MemFs& lower = cluster.machine(shard).basefs();
    auto image = lower.ReadFileRaw(path);
    if (image.ok() && image->size() > 4) {
      ASSERT_TRUE(lower
                      .WriteFileRaw(path, std::string_view(*image).substr(
                                              0, image->size() - 3))
                      .ok());
    }
  }
  auto recovery = cluster.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_GT(recovery->truncated_journals, 0u);
  ExpectFederatedMatchesMerged(&cluster, "torn journal tail");
}

// ---- Hash chain + audit interaction -----------------------------------------

// Satellite (small fix): ScanJournal surfaces *where* the valid prefix ends
// and the chain head over it, so recovery and the auditor stop re-deriving
// offsets independently.
TEST_F(ClusterJournalTest, ScanJournalReportsOffsetsAndChainHead) {
  ClusterJournal journal(&lower_);
  journal.AppendReplBatch(1, SampleEntries());
  journal.AppendMigrateBegin(9, core::ShardSpace(0), 0, 1);

  auto image = lower_.ReadFileRaw(journal.path());
  ASSERT_TRUE(image.ok());
  auto scan = lasagna::ScanJournal(&lower_, journal.path());
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->truncated);
  EXPECT_EQ(scan->valid_bytes, image->size());
  EXPECT_EQ(scan->corrupt_frames, 0u);
  // Writer-maintained chain and disk-derived chain agree.
  EXPECT_EQ(scan->chain_head, journal.chain_head());
  EXPECT_EQ(lasagna::MapFrames(*image).chain_head, journal.chain_head());

  // Tear the tail: valid_bytes pins the boundary, the torn frame is
  // counted, and the chain head shrinks to the surviving prefix.
  size_t first_frame_end = lasagna::MapFrames(*image).frames[1].offset;
  ASSERT_TRUE(lower_
                  .WriteFileRaw(journal.path(),
                                std::string_view(*image).substr(
                                    0, image->size() - 3))
                  .ok());
  scan = lasagna::ScanJournal(&lower_, journal.path());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->truncated);
  EXPECT_EQ(scan->valid_bytes, first_frame_end);
  EXPECT_EQ(scan->corrupt_frames, 1u);
  EXPECT_EQ(scan->chain_head,
            lasagna::MapFrames(
                std::string_view(*image).substr(0, first_frame_end))
                .chain_head);

  // Scan() forwards the same offsets to the cluster layer.
  auto state = journal.Scan();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->valid_bytes, first_frame_end);
  EXPECT_EQ(state->corrupt_frames, 1u);
}

// The writer chain describes the *durable* image only: buffered group
// frames advance it at commit, never on abort, and a restart re-folds the
// same head from disk.
TEST_F(ClusterJournalTest, ChainHeadTracksDurableImageAcrossGroups) {
  ClusterJournal journal(&lower_);
  journal.AppendReplBatch(1, SampleEntries());
  lasagna::ChainHash before_group = journal.chain_head();

  journal.BeginGroup();
  journal.AppendReplBatch(2, SampleEntries());
  EXPECT_EQ(journal.chain_head(), before_group);  // buffered, not durable
  journal.AbortGroup();
  EXPECT_EQ(journal.chain_head(), before_group);

  journal.BeginGroup();
  journal.AppendReplBatch(2, SampleEntries());
  journal.CommitGroup();
  EXPECT_NE(journal.chain_head(), before_group);
  EXPECT_EQ(journal.chain_frames(), 2u);

  // Disk agrees, and a restarted journal re-derives the identical head.
  auto image = lower_.ReadFileRaw(journal.path());
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(lasagna::MapFrames(*image).chain_head, journal.chain_head());
  ClusterJournal restarted(&lower_);
  EXPECT_EQ(restarted.chain_head(), journal.chain_head());
  EXPECT_EQ(restarted.chain_frames(), journal.chain_frames());
}

// Satellite acceptance (crash x tamper, benign half): a torn multi-frame
// group-commit tail appended *after* the seal classifies as a benign crash
// — zero findings, one counted torn tail — because every sealed frame is
// still intact and the damage lies strictly beyond the sealed prefix.
TEST(JournalCrashTest, TornGroupCommitTailBeyondSealIsBenign) {
  ClusterCoordinator cluster(CrashClusterOptions());
  RunChainWorkload(&cluster, 8);
  ASSERT_TRUE(cluster.Sync().ok());

  // Seal after the sync: only journals are on disk (logs were consumed).
  Auditor auditor(&cluster, /*seed=*/3);
  ASSERT_TRUE(auditor.Seal().clean());
  std::vector<uint64_t> sealed_frames(kShards);
  for (int shard = 0; shard < kShards; ++shard) {
    sealed_frames[shard] = cluster.journal(shard).chain_frames();
  }

  // More lineage + another sync: the journals grow by group-committed
  // REPL_BATCH frames beyond the sealed prefix.
  auto a = cluster.WriteWithLineage(0, "/post-seal-a", "x", {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(cluster.WriteWithLineage(1, "/post-seal-b", "y", {*a}).ok());
  ASSERT_TRUE(cluster.Sync().ok());

  int grown = -1;
  for (int shard = 0; shard < kShards; ++shard) {
    if (cluster.journal(shard).chain_frames() > sealed_frames[shard]) {
      grown = shard;
      break;
    }
  }
  ASSERT_GE(grown, 0);

  // The crash tears the coalesced post-seal write mid-frame.
  const std::string& path = cluster.journal(grown).path();
  fs::MemFs* lower = cluster.machine(grown).volume()->lower();
  auto image = lower->ReadFileRaw(path);
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(lower
                  ->WriteFileRaw(path, std::string_view(*image).substr(
                                           0, image->size() - 3))
                  .ok());

  AuditReport report = auditor.AuditAll(
      AuditOptions{.files = true, .db = false, .custody = false});
  EXPECT_TRUE(report.clean()) << report.findings[0].detail;
  EXPECT_GE(report.benign_torn_tails, 1u);
}

// Satellite acceptance (crash x tamper, adversarial half): tampering
// injected *before* a crash survives Recover() — the checkpoint re-emits
// the doctored custody payload verbatim — and the first post-recovery
// custody audit convicts it.
TEST(JournalCrashTest, TamperBeforeCrashSurvivesRecoveryAndIsCaught) {
  ClusterCoordinator cluster(CrashClusterOptions());
  RunChainWorkload(&cluster, 8);
  ASSERT_TRUE(cluster.Sync().ok());
  core::PnodeRange range{core::ShardSpace(0).begin,
                         cluster.machine(0).allocator().peek_next()};
  ASSERT_TRUE(cluster.MigrateRange(range, 2).ok());

  Auditor auditor(&cluster, /*seed=*/3);
  ASSERT_TRUE(auditor.Seal().clean());

  // The adversary edits the sealed range digest inside the EPOCH_BUMP
  // custody record — CRC re-fixed, so framing stays self-consistent.
  const std::string& path = cluster.journal(0).path();
  fs::MemFs* lower = cluster.machine(0).volume()->lower();
  auto image = lower->ReadFileRaw(path);
  ASSERT_TRUE(image.ok());
  auto records = lasagna::ParseJournal(*image);
  ASSERT_TRUE(records.ok());
  size_t bump_frame = records->size();
  for (size_t i = 0; i < records->size(); ++i) {
    if ((*records)[i].type == JournalRecordType::kEpochBump) {
      bump_frame = i;
      break;
    }
  }
  ASSERT_LT(bump_frame, records->size());
  lasagna::FrameMap map = lasagna::MapFrames(*image);
  TamperFs tamper(lower);
  ASSERT_TRUE(tamper
                  .Inject(path, TamperSite{TamperKind::kFlipByteFixCrc,
                                           bump_frame,
                                           8 + map.frames[bump_frame].length -
                                               1,
                                           "edit_custody_digest"})
                  .ok());

  // Then the machine dies mid-sync...
  auto extra = cluster.WriteWithLineage(0, "/pre-crash", "z", {});
  ASSERT_TRUE(extra.ok());
  cluster.env().CrashAfterOps(2);
  EXPECT_FALSE(cluster.Sync().ok());

  // ...and recovery succeeds: the doctored digest bytes are opaque to the
  // epoch replay, and the checkpoint preserves them verbatim.
  auto recovery = cluster.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  ExpectFederatedMatchesMerged(&cluster, "tamper before crash");

  // The first post-recovery custody audit pinpoints the rewrite.
  AuditReport report = auditor.AuditAll(
      AuditOptions{.files = false, .db = false, .custody = true});
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.findings[0].klass, TamperClass::kRowEdit);
  EXPECT_EQ(report.findings[0].shard, 0);
  EXPECT_NE(report.findings[0].detail.find("custody"), std::string::npos);
}

}  // namespace
}  // namespace pass::cluster
