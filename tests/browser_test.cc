// Tests for PA-links (§6.3 / §3.2): session provenance, downloads with
// URL records, attribution after rename, and the malware-source scenario.

#include <gtest/gtest.h>

#include "src/browser/browser.h"
#include "src/workloads/machine.h"

namespace pass::browser {
namespace {

using workloads::Machine;
using workloads::MachineOptions;

class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest()
      : machine_([] {
          MachineOptions options;
          options.with_pass = true;
          return options;
        }()) {
    web_.AddPage("http://news.example/", "<html>news</html>",
                 {"http://news.example/science"});
    web_.AddPage("http://news.example/science", "<html>science</html>");
    web_.AddRedirect("http://short.ly/x", "http://lab.example/data");
    web_.AddPage("http://lab.example/data", "<html>dataset index</html>");
    web_.AddDownload("http://lab.example/quotes.txt", "E = mc^2");
    web_.AddDownload("http://codecs.example/codec.bin", "CODEC-v1");
    pid_ = machine_.Spawn("links");
  }

  core::Record FindRecord(core::PnodeId pnode, core::Attr attr) {
    for (const core::Record& record :
         machine_.db()->RecordsOfAllVersions(pnode)) {
      if (record.attr == attr) {
        return record;
      }
    }
    return core::Record{};
  }

  Machine machine_;
  SimWeb web_;
  os::Pid pid_;
};

TEST_F(BrowserTest, VisitRecordsSessionUrls) {
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  ASSERT_TRUE(browser.Visit("http://news.example/").ok());
  ASSERT_TRUE(browser.Visit("http://news.example/science").ok());
  ASSERT_TRUE(browser.SyncSession().ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  auto sessions = machine_.db()->PnodesByType("SESSION");
  ASSERT_EQ(sessions.size(), 1u);
  size_t visited = 0;
  for (const core::Record& record :
       machine_.db()->RecordsOfAllVersions(sessions[0])) {
    if (record.attr == core::Attr::kVisitedUrl) {
      ++visited;
    }
  }
  EXPECT_EQ(visited, 2u);
}

TEST_F(BrowserTest, RedirectsAreRecordedHopByHop) {
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  auto content = browser.Visit("http://short.ly/x");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(browser.current_url(), "http://lab.example/data");
  EXPECT_EQ(browser.stats().redirects_followed, 1u);
  EXPECT_EQ(browser.history().size(), 2u);  // both hops in the session
}

TEST_F(BrowserTest, DownloadCarriesThreeRecordTypes) {
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  ASSERT_TRUE(browser.Visit("http://lab.example/data").ok());
  ASSERT_TRUE(machine_.kernel().Mkdir(pid_, "/home").ok());
  ASSERT_TRUE(
      browser.Download("http://lab.example/quotes.txt", "/home/quote.txt")
          .ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  auto files = machine_.db()->PnodesByName("/home/quote.txt");
  ASSERT_EQ(files.size(), 1u);
  core::Record file_url = FindRecord(files[0], core::Attr::kFileUrl);
  EXPECT_EQ(std::get<std::string>(file_url.value),
            "http://lab.example/quotes.txt");
  core::Record current_url = FindRecord(files[0], core::Attr::kCurrentUrl);
  EXPECT_EQ(std::get<std::string>(current_url.value),
            "http://lab.example/data");
  // INPUT edge to the session.
  auto sessions = machine_.db()->PnodesByType("SESSION");
  ASSERT_EQ(sessions.size(), 1u);
  bool linked = false;
  for (core::Version v : machine_.db()->VersionsOf(files[0])) {
    for (const core::ObjectRef& input :
         machine_.db()->Inputs({files[0], v})) {
      if (input.pnode == sessions[0]) {
        linked = true;
      }
    }
  }
  EXPECT_TRUE(linked);
}

TEST_F(BrowserTest, AttributionSurvivesRenameAndHistoryLoss) {
  // §3.2: the professor copies the file, clears her history; the browser
  // has forgotten but PASSv2 has not.
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  ASSERT_TRUE(browser.Visit("http://lab.example/data").ok());
  ASSERT_TRUE(machine_.kernel().Mkdir(pid_, "/dl").ok());
  ASSERT_TRUE(
      browser.Download("http://lab.example/quotes.txt", "/dl/quote.txt")
          .ok());
  browser.ClearHistory();
  EXPECT_TRUE(browser.history().empty());

  ASSERT_TRUE(machine_.kernel().Mkdir(pid_, "/talk").ok());
  ASSERT_TRUE(
      machine_.kernel().Rename(pid_, "/dl/quote.txt", "/talk/quote.txt").ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  // Same pnode, new name; FILE_URL still answers the attribution question.
  auto files = machine_.db()->PnodesByName("/talk/quote.txt");
  ASSERT_EQ(files.size(), 1u);
  core::Record url = FindRecord(files[0], core::Attr::kFileUrl);
  EXPECT_EQ(std::get<std::string>(url.value),
            "http://lab.example/quotes.txt");
}

TEST_F(BrowserTest, MalwareSourceAndSpreadAreTraceable) {
  // §3.2: Eve hacks the codec site; Alice downloads and runs it; the
  // malware infects other files. Layered provenance answers both "where
  // from" and "what did it touch".
  web_.ReplaceContent("http://codecs.example/codec.bin", "CODEC-v1+MALWARE");
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  ASSERT_TRUE(browser.Visit("http://news.example/").ok());
  ASSERT_TRUE(machine_.kernel().Mkdir(pid_, "/bin").ok());
  ASSERT_TRUE(
      browser.Download("http://codecs.example/codec.bin", "/bin/codec").ok());

  // Alice runs the codec; it infects another binary.
  os::Pid infected = machine_.Spawn("codec");
  ASSERT_TRUE(machine_.kernel().Exec(infected, "/bin/codec", {"codec"}).ok());
  auto payload = machine_.kernel().ReadFile(infected, "/bin/codec");
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(
      machine_.kernel().WriteFile(infected, "/bin/ls", "ls+" + *payload).ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  // Backwards: /bin/ls descends from the codec file, which carries the URL.
  auto ls = machine_.db()->PnodesByName("/bin/ls");
  auto codec = machine_.db()->PnodesByName("/bin/codec");
  ASSERT_EQ(ls.size(), 1u);
  ASSERT_EQ(codec.size(), 1u);
  std::set<core::ObjectRef> seen;
  std::vector<core::ObjectRef> stack;
  for (core::Version v : machine_.db()->VersionsOf(ls[0])) {
    stack.push_back({ls[0], v});
  }
  bool descends_from_codec = false;
  while (!stack.empty()) {
    core::ObjectRef ref = stack.back();
    stack.pop_back();
    if (!seen.insert(ref).second) {
      continue;
    }
    if (ref.pnode == codec[0]) {
      descends_from_codec = true;
    }
    for (const core::ObjectRef& input : machine_.db()->Inputs(ref)) {
      stack.push_back(input);
    }
  }
  EXPECT_TRUE(descends_from_codec);
  core::Record url = FindRecord(codec[0], core::Attr::kFileUrl);
  EXPECT_EQ(std::get<std::string>(url.value),
            "http://codecs.example/codec.bin");
}

TEST_F(BrowserTest, SessionRestoreViaReviveObj) {
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  ASSERT_TRUE(browser.Visit("http://news.example/").ok());
  auto ref = browser.SessionRef();
  ASSERT_TRUE(ref.ok());

  os::Pid pid2 = machine_.Spawn("links-restarted");
  Browser restarted(&machine_.kernel(), pid2, machine_.Lib(pid2), &web_);
  ASSERT_TRUE(restarted.RestoreSession(ref->pnode, ref->version).ok());
  ASSERT_TRUE(restarted.Visit("http://news.example/science").ok());
  ASSERT_TRUE(restarted.SyncSession().ok());
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  // Both visits hang off the same session object.
  size_t visited = 0;
  for (const core::Record& record :
       machine_.db()->RecordsOfAllVersions(ref->pnode)) {
    if (record.attr == core::Attr::kVisitedUrl) {
      ++visited;
    }
  }
  EXPECT_EQ(visited, 2u);
}

TEST_F(BrowserTest, FetchFailuresSurface) {
  Browser browser(&machine_.kernel(), pid_, machine_.Lib(pid_), &web_);
  ASSERT_TRUE(browser.OpenSession().ok());
  EXPECT_FALSE(browser.Visit("http://nowhere.example/").ok());
  EXPECT_FALSE(browser.Download("http://nowhere.example/f", "/f").ok());
}

}  // namespace
}  // namespace pass::browser
