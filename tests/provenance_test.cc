// Tests for the provenance vocabulary: records, values, bundles, wire
// encoding, hashing.

#include <gtest/gtest.h>

#include "src/core/provenance.h"

namespace pass::core {
namespace {

TEST(ObjectRefTest, OrderingAndEquality) {
  ObjectRef a{1, 0};
  ObjectRef b{1, 1};
  ObjectRef c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ObjectRef{1, 0}));
  EXPECT_FALSE(ObjectRef{}.valid());
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.ToString(), "p1.v0");
}

TEST(RecordTest, Factories) {
  Record input = Record::Input(ObjectRef{7, 3});
  EXPECT_EQ(input.attr, Attr::kInput);
  EXPECT_EQ(std::get<ObjectRef>(input.value), (ObjectRef{7, 3}));

  Record name = Record::Name("/etc/passwd");
  EXPECT_EQ(name.attr, Attr::kName);
  EXPECT_EQ(name.ToString(), "NAME=/etc/passwd");

  Record annotation = Record::Annotation("mime", std::string("image/gif"));
  EXPECT_EQ(annotation.ToString(), "mime=image/gif");
}

TEST(RecordTest, AttrNamesMatchTable1) {
  // Table 1 of the paper.
  EXPECT_EQ(AttrName(Attr::kBeginTxn), "BEGINTXN");
  EXPECT_EQ(AttrName(Attr::kEndTxn), "ENDTXN");
  EXPECT_EQ(AttrName(Attr::kFreeze), "FREEZE");
  EXPECT_EQ(AttrName(Attr::kType), "TYPE");
  EXPECT_EQ(AttrName(Attr::kName), "NAME");
  EXPECT_EQ(AttrName(Attr::kParams), "PARAMS");
  EXPECT_EQ(AttrName(Attr::kInput), "INPUT");
  EXPECT_EQ(AttrName(Attr::kVisitedUrl), "VISITED_URL");
  EXPECT_EQ(AttrName(Attr::kFileUrl), "FILE_URL");
  EXPECT_EQ(AttrName(Attr::kCurrentUrl), "CURRENT_URL");
}

class RecordRoundTrip : public ::testing::TestWithParam<Record> {};

TEST_P(RecordRoundTrip, EncodeDecode) {
  const Record& record = GetParam();
  std::string buf;
  EncodeRecord(&buf, record);
  Decoder in(buf);
  auto decoded = DecodeRecord(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, record);
  EXPECT_TRUE(in.done());
  EXPECT_EQ(EncodedSize(record), buf.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllValueKinds, RecordRoundTrip,
    ::testing::Values(
        Record::Input(ObjectRef{42, 7}),
        Record::Name("/a/b/c"),
        Record::Type("PROC"),
        Record::Of(Attr::kPid, int64_t{12345}),
        Record::Of(Attr::kFreeze, int64_t{3}),
        Record::Annotation("temperature", 98.6),
        Record::Annotation("flag", true),
        Record::Annotation("nothing", Value{}),
        Record::Of(Attr::kVisitedUrl, std::string("http://example.com/a")),
        Record::Annotation("", std::string(10000, 'x'))));

TEST(RecordCodecTest, DecodeRejectsBadTag) {
  std::string buf;
  EncodeRecord(&buf, Record::Name("x"));
  buf[buf.size() - 2 - 4] = 99;  // clobber the value tag
  Decoder in(buf);
  auto decoded = DecodeRecord(&in);
  // Either a bad-tag error or trailing garbage; must not crash or succeed
  // with the original value intact.
  if (decoded.ok()) {
    EXPECT_NE(*decoded, Record::Name("x"));
  }
}

TEST(BundleTest, EncodeDecodeRoundTrip) {
  Bundle bundle;
  bundle.push_back(BundleEntry{
      ObjectRef{1, 0},
      {Record::Name("/f"), Record::Input(ObjectRef{2, 1})}});
  bundle.push_back(BundleEntry{ObjectRef{2, 1}, {Record::Type("PROC")}});

  std::string buf;
  EncodeBundle(&buf, bundle);
  Decoder in(buf);
  auto decoded = DecodeBundle(&in);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].target, (ObjectRef{1, 0}));
  EXPECT_EQ((*decoded)[0].records.size(), 2u);
  EXPECT_EQ((*decoded)[1].records[0], Record::Type("PROC"));
}

TEST(BundleTest, AppendCoalescesConsecutiveSubjects) {
  Bundle bundle;
  AppendToBundle(&bundle, ObjectRef{1, 0}, Record::Name("/a"));
  AppendToBundle(&bundle, ObjectRef{1, 0}, Record::Type("FILE"));
  AppendToBundle(&bundle, ObjectRef{2, 0}, Record::Type("PROC"));
  AppendToBundle(&bundle, ObjectRef{1, 0}, Record::Name("/b"));
  ASSERT_EQ(bundle.size(), 3u);
  EXPECT_EQ(bundle[0].records.size(), 2u);
  EXPECT_EQ(BundleRecordCount(bundle), 4u);
}

TEST(RecordHashTest, EqualRecordsHashEqual) {
  EXPECT_EQ(RecordHash(Record::Name("/x")), RecordHash(Record::Name("/x")));
  EXPECT_EQ(RecordHash(Record::Input(ObjectRef{3, 1})),
            RecordHash(Record::Input(ObjectRef{3, 1})));
}

TEST(RecordHashTest, DistinguishesValueAndAttr) {
  EXPECT_NE(RecordHash(Record::Name("/x")), RecordHash(Record::Name("/y")));
  EXPECT_NE(RecordHash(Record::Name("/x")), RecordHash(Record::Type("/x")));
  EXPECT_NE(RecordHash(Record::Input(ObjectRef{3, 1})),
            RecordHash(Record::Input(ObjectRef{3, 2})));
  EXPECT_NE(RecordHash(Record::Annotation("k", int64_t{1})),
            RecordHash(Record::Annotation("k", true)));
}

}  // namespace
}  // namespace pass::core
