// Tests for the ShardMap routing layer: home-hint ownership, range
// overrides, epoch versioning, and the override interval arithmetic.

#include <gtest/gtest.h>

#include "src/cluster/shard_map.h"

namespace pass::cluster {
namespace {

core::PnodeId At(uint16_t shard, uint64_t offset) {
  return core::ShardSpace(shard).begin + offset;
}

TEST(ShardMapTest, DefaultsToAllocatorHome) {
  ShardMap map(4);
  EXPECT_EQ(map.shard_count(), 4);
  EXPECT_EQ(map.epoch(), 0u);
  for (uint16_t shard = 0; shard < 4; ++shard) {
    EXPECT_EQ(map.OwnerOf(At(shard, 1)), shard);
    EXPECT_EQ(map.HomeOf(At(shard, 1)), shard);
  }
  // Outside the cluster's shard spaces.
  EXPECT_EQ(map.OwnerOf(At(4, 1)), -1);
  EXPECT_EQ(map.HomeOf(At(200, 7)), -1);
  EXPECT_TRUE(map.Overrides().empty());
}

TEST(ShardMapTest, AssignOverridesARangeAndBumpsEpoch) {
  ShardMap map(4);
  ASSERT_TRUE(map.Assign({At(0, 10), At(0, 20)}, 2).ok());
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.OwnerOf(At(0, 9)), 0);
  EXPECT_EQ(map.OwnerOf(At(0, 10)), 2);
  EXPECT_EQ(map.OwnerOf(At(0, 19)), 2);
  EXPECT_EQ(map.OwnerOf(At(0, 20)), 0);
  // The home hint is unchanged.
  EXPECT_EQ(map.HomeOf(At(0, 15)), 0);
  ASSERT_EQ(map.Overrides().size(), 1u);
  EXPECT_EQ(map.Overrides()[0].second, 2);
}

TEST(ShardMapTest, AssignRejectsBadArguments) {
  ShardMap map(2);
  EXPECT_FALSE(map.Assign({At(0, 5), At(0, 5)}, 1).ok());   // empty
  EXPECT_FALSE(map.Assign({At(0, 9), At(0, 5)}, 1).ok());   // inverted
  EXPECT_FALSE(map.Assign({At(0, 5), At(0, 9)}, 2).ok());   // not a member
  EXPECT_FALSE(map.Assign({At(0, 5), At(0, 9)}, -1).ok());  // not a member
  EXPECT_FALSE(map.Assign({At(5, 1), At(5, 9)}, 1).ok());   // outside cluster
  EXPECT_FALSE(map.Assign({At(0, 5), At(1, 9)}, 1).ok());   // spans homes
  EXPECT_EQ(map.epoch(), 0u);
}

TEST(ShardMapTest, ReassigningBackHomeErasesTheOverride) {
  ShardMap map(3);
  ASSERT_TRUE(map.Assign({At(1, 0), At(1, 100)}, 2).ok());
  ASSERT_TRUE(map.Assign({At(1, 0), At(1, 100)}, 1).ok());
  EXPECT_EQ(map.epoch(), 2u);
  EXPECT_EQ(map.OwnerOf(At(1, 50)), 1);
  EXPECT_TRUE(map.Overrides().empty());
}

TEST(ShardMapTest, AssignSplitsAnOverlappingOverride) {
  ShardMap map(4);
  ASSERT_TRUE(map.Assign({At(0, 10), At(0, 40)}, 1).ok());
  // Carve the middle out for shard 3; the flanks stay with shard 1.
  ASSERT_TRUE(map.Assign({At(0, 20), At(0, 30)}, 3).ok());
  EXPECT_EQ(map.OwnerOf(At(0, 15)), 1);
  EXPECT_EQ(map.OwnerOf(At(0, 25)), 3);
  EXPECT_EQ(map.OwnerOf(At(0, 35)), 1);
  ASSERT_EQ(map.Overrides().size(), 3u);
}

TEST(ShardMapTest, AssignAbsorbsContainedOverrides) {
  ShardMap map(4);
  ASSERT_TRUE(map.Assign({At(0, 10), At(0, 20)}, 1).ok());
  ASSERT_TRUE(map.Assign({At(0, 30), At(0, 40)}, 2).ok());
  ASSERT_TRUE(map.Assign({At(0, 5), At(0, 50)}, 3).ok());
  EXPECT_EQ(map.OwnerOf(At(0, 12)), 3);
  EXPECT_EQ(map.OwnerOf(At(0, 35)), 3);
  EXPECT_EQ(map.OwnerOf(At(0, 4)), 0);
  EXPECT_EQ(map.OwnerOf(At(0, 50)), 0);
  ASSERT_EQ(map.Overrides().size(), 1u);
}

TEST(ShardMapTest, AdjacentSameShardOverridesCoalesce) {
  ShardMap map(4);
  ASSERT_TRUE(map.Assign({At(0, 10), At(0, 20)}, 2).ok());
  ASSERT_TRUE(map.Assign({At(0, 20), At(0, 30)}, 2).ok());
  ASSERT_EQ(map.Overrides().size(), 1u);
  EXPECT_EQ(map.Overrides()[0].first,
            (core::PnodeRange{At(0, 10), At(0, 30)}));
}

TEST(ShardMapTest, OwnerOfRangeDetectsSplitOwnership) {
  ShardMap map(4);
  EXPECT_EQ(map.OwnerOfRange({At(1, 0), At(1, 100)}), 1);
  EXPECT_EQ(map.OwnerOfRange({At(1, 0), At(1, 0)}), -1);  // empty
  ASSERT_TRUE(map.Assign({At(1, 40), At(1, 60)}, 2).ok());
  EXPECT_EQ(map.OwnerOfRange({At(1, 0), At(1, 100)}), -1);   // 1 then 2 then 1
  EXPECT_EQ(map.OwnerOfRange({At(1, 40), At(1, 60)}), 2);    // exactly override
  EXPECT_EQ(map.OwnerOfRange({At(1, 45), At(1, 55)}), 2);    // inside override
  EXPECT_EQ(map.OwnerOfRange({At(1, 60), At(1, 90)}), 1);    // after override
  EXPECT_EQ(map.OwnerOfRange({At(1, 30), At(1, 50)}), -1);   // straddles
  EXPECT_EQ(map.OwnerOfRange({At(9, 0), At(9, 9)}), -1);     // outside cluster
}

TEST(ShardMapTest, AssignmentsPartitionEveryHomeSpace) {
  ShardMap map(2);
  ASSERT_TRUE(map.Assign({At(0, 100), At(0, 200)}, 1).ok());
  auto assignments = map.Assignments();
  // Shard 0's space splits in three; shard 1's stays whole.
  ASSERT_EQ(assignments.size(), 4u);
  core::PnodeId cursor = core::ShardSpace(0).begin;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(assignments[i].first.begin, cursor);
    cursor = assignments[i].first.end;
  }
  EXPECT_EQ(cursor, core::ShardSpace(0).end);
  EXPECT_EQ(assignments[1].second, 1);  // the override
  EXPECT_EQ(assignments[0].second, 0);
  EXPECT_EQ(assignments[2].second, 0);
  EXPECT_EQ(assignments[3].first, core::ShardSpace(1));
  EXPECT_EQ(assignments[3].second, 1);
}

// The epoch history: every successful Assign is remembered, and
// ChangesSince(e) returns exactly the ranges reassigned after epoch e — the
// contract the portal cache's incremental revalidation is built on.
TEST(ShardMapTest, HistoryRecordsEveryAssign) {
  ShardMap map(4);
  core::PnodeRange first{At(0, 10), At(0, 20)};
  core::PnodeRange second{At(1, 5), At(1, 6)};
  ASSERT_TRUE(map.Assign(first, 2).ok());
  ASSERT_TRUE(map.Assign(second, 3).ok());
  ASSERT_EQ(map.history().size(), 2u);
  EXPECT_EQ(map.history()[0].epoch, 1u);
  EXPECT_EQ(map.history()[0].range, first);
  EXPECT_EQ(map.history()[0].to_shard, 2);
  EXPECT_EQ(map.history()[1].epoch, 2u);
  EXPECT_EQ(map.history()[1].range, second);
  EXPECT_EQ(map.history()[1].to_shard, 3);
}

TEST(ShardMapTest, ChangesSinceReturnsOnlyNewerEpochs) {
  ShardMap map(4);
  core::PnodeRange first{At(0, 10), At(0, 20)};
  core::PnodeRange second{At(1, 5), At(1, 6)};
  ASSERT_TRUE(map.Assign(first, 2).ok());
  ASSERT_TRUE(map.Assign(second, 3).ok());
  auto all = map.ChangesSince(0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], first);
  EXPECT_EQ(all[1], second);
  auto tail = map.ChangesSince(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], second);
  EXPECT_TRUE(map.ChangesSince(2).empty());
  EXPECT_TRUE(map.ChangesSince(99).empty());
}

TEST(ShardMapTest, ResetClearsHistory) {
  ShardMap map(4);
  ASSERT_TRUE(map.Assign({At(0, 10), At(0, 20)}, 2).ok());
  ASSERT_FALSE(map.history().empty());
  map.Reset();
  EXPECT_TRUE(map.history().empty());
  EXPECT_TRUE(map.ChangesSince(0).empty());
}

}  // namespace
}  // namespace pass::cluster
