// Tests for the portal tier: epoch-pinned sessions whose answers stay
// consistent across live migration (backed by the coordinator's deferred
// source-side retirement), the shared cache budget with per-tenant quotas
// and FIFO admission queueing, and the portal.* metric surface.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/portal.h"
#include "src/obs/stats_bridge.h"
#include "src/pql/eval.h"
#include "src/pql/provdb_source.h"

namespace pass::cluster {
namespace {

ClusterOptions SmallCluster(int shards) {
  ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = 16;
  return options;
}

std::vector<core::ObjectRef> BuildCrossShardChain(ClusterCoordinator* cluster,
                                                  int files) {
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(i % cluster->shard_count(),
                                         "/f" + std::to_string(i), "payload",
                                         sources);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
  return refs;
}

std::multiset<std::string> Rows(const pql::QueryResult& result) {
  std::multiset<std::string> out;
  for (const auto& row : result.rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    out.insert(line);
  }
  return out;
}

std::multiset<std::string> MergedAnswer(ClusterCoordinator* cluster,
                                        const std::string& query) {
  waldo::ProvDb merged;
  cluster->MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  pql::Engine engine(&merged_source);
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? Rows(*result) : std::multiset<std::string>{};
}

std::multiset<std::string> SessionAnswer(PortalSession* session,
                                         const std::string& query) {
  auto result = session->Run(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? Rows(*result) : std::multiset<std::string>{};
}

const char kTailClosure[] =
    "select Ancestor from Provenance.file as F F.input* as Ancestor "
    "where F.name = \"/f11\"";

TEST(PortalSessionTest, PinCapturesEpochAndJournalHorizons) {
  ClusterCoordinator cluster(SmallCluster(4));
  BuildCrossShardChain(&cluster, 8);
  ASSERT_TRUE(cluster.Sync().ok());

  PortalTier tier(&cluster);
  auto opened = tier.Open();
  ASSERT_TRUE(opened.ok());
  PortalSession* session = opened->get();
  EXPECT_EQ(session->pinned_epoch(), cluster.shard_map().epoch());
  ASSERT_EQ(session->journal_horizons().size(),
            static_cast<size_t>(cluster.shard_count()));
  for (int s = 0; s < cluster.shard_count(); ++s) {
    EXPECT_EQ(session->journal_horizons()[s],
              cluster.journal(s).records_appended());
  }
  EXPECT_EQ(cluster.min_pinned_epoch(), session->pinned_epoch());
}

// Tentpole acceptance: a session pinned before a migration keeps answering
// exactly the merged database *during* the migration window — the
// coordinator defers the source-side delete while the pin routes the moved
// range to the old owner — and after RePin() the deferral retires and the
// session follows the live map.
TEST(PortalSessionTest, PinnedSessionAnswersConsistentlyAcrossMigration) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  PortalTier tier(&cluster);
  auto opened = tier.Open();
  ASSERT_TRUE(opened.ok());
  PortalSession* session = opened->get();
  auto before = SessionAnswer(session, kTailClosure);
  EXPECT_EQ(before, MergedAnswer(&cluster, kTailClosure));

  // Live migration while the session stays pinned: /f5's range (shard 1)
  // moves to shard 3. The source-side delete must be held back.
  core::PnodeRange range{refs[5].pnode, refs[5].pnode + 1};
  uint64_t deleted_before = cluster.migration_stats().rows_deleted;
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  EXPECT_EQ(cluster.deferred_retirements(), 1u);
  EXPECT_EQ(cluster.migration_stats().rows_deleted, deleted_before);
  EXPECT_EQ(cluster.OwnerOf(refs[5].pnode), 3);  // live map moved on

  // Mid-migration: the pinned snapshot still routes /f5 to shard 1, whose
  // rows are intact, so the answer is unchanged and equals the merged view.
  auto during = SessionAnswer(session, kTailClosure);
  EXPECT_EQ(during, before);
  EXPECT_EQ(during, MergedAnswer(&cluster, kTailClosure));

  // Re-pin: the old pin releases, the deferred delete retires, and the
  // session adopts the bumped map — same answers through the new owner.
  session->RePin();
  EXPECT_EQ(cluster.deferred_retirements(), 0u);
  EXPECT_GT(cluster.migration_stats().rows_deleted, deleted_before);
  EXPECT_EQ(session->pinned_epoch(), cluster.shard_map().epoch());
  auto after = SessionAnswer(session, kTailClosure);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, MergedAnswer(&cluster, kTailClosure));
}

// Closing the pinned session (not just RePin) must also release deferrals.
TEST(PortalSessionTest, ClosingSessionRetiresDeferredDeletes) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  PortalTier tier(&cluster);
  auto opened = tier.Open();
  ASSERT_TRUE(opened.ok());
  uint64_t id = opened->id();
  core::PnodeRange range{refs[5].pnode, refs[5].pnode + 1};
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  EXPECT_EQ(cluster.deferred_retirements(), 1u);

  ASSERT_TRUE(tier.Close(id).ok());
  EXPECT_EQ(cluster.deferred_retirements(), 0u);
  // The migrated rows now live only on the destination; a fresh portal and
  // the merged view agree.
  FederatedSource source = cluster.Source();
  pql::Engine engine(&source);
  auto result = engine.Run(kTailClosure);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Rows(*result), MergedAnswer(&cluster, kTailClosure));
}

// Regression: a deferred source-side delete must not fire after a later
// migration moves the range *back* onto that shard — the re-ship makes the
// shard's copy live again, so the stale deferral is cancelled (committed
// without the delete), not left to destroy rows the shard now owns.
TEST(PortalSessionTest, MigratingBackCancelsOverlappingDeferredDelete) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  PortalTier tier(&cluster);
  auto opened = tier.Open();
  ASSERT_TRUE(opened.ok());
  PortalSession* session = opened->get();
  auto before = SessionAnswer(session, kTailClosure);
  ASSERT_EQ(before, MergedAnswer(&cluster, kTailClosure));

  core::PnodeRange range{refs[5].pnode, refs[5].pnode + 1};
  int home = cluster.OwnerOf(refs[5].pnode);
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  ASSERT_EQ(cluster.deferred_retirements(), 1u);

  // Move the range straight back while the pin still holds the first
  // migration's delete. The first deferral is cancelled; the second
  // migration's own delete (on shard 3) defers in its place.
  ASSERT_TRUE(cluster.MigrateRange(range, home).ok());
  EXPECT_EQ(cluster.OwnerOf(refs[5].pnode), home);
  EXPECT_EQ(cluster.deferred_retirements(), 1u);

  // Release the pin: retirement may only delete shard 3's copy, never the
  // rows shard `home` owns again.
  session->RePin();
  EXPECT_EQ(cluster.deferred_retirements(), 0u);
  auto after = SessionAnswer(session, kTailClosure);
  EXPECT_EQ(after, before);
  EXPECT_EQ(after, MergedAnswer(&cluster, kTailClosure));
}

// Same scenario through a crash: the cancelled migration is committed on
// disk before the re-ship begins, so Recover()'s roll-forward must not run
// its delete either.
TEST(PortalSessionTest, RecoveryAfterMigrateBackKeepsReShippedRows) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());
  auto merged_before = MergedAnswer(&cluster, kTailClosure);

  PortalTier tier(&cluster);
  auto opened = tier.Open();
  ASSERT_TRUE(opened.ok());
  uint64_t id = opened->id();
  core::PnodeRange range{refs[5].pnode, refs[5].pnode + 1};
  int home = cluster.OwnerOf(refs[5].pnode);
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  ASSERT_TRUE(cluster.MigrateRange(range, home).ok());

  // Recover() forgets pins and deferrals and replays the journals; only the
  // still-open second migration may roll its delete forward (on shard 3).
  auto report = cluster.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(cluster.deferred_retirements(), 0u);
  EXPECT_EQ(cluster.OwnerOf(refs[5].pnode), home);

  FederatedSource source = cluster.Source();
  pql::Engine engine(&source);
  auto result = engine.Run(kTailClosure);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Rows(*result), merged_before);
  EXPECT_EQ(Rows(*result), MergedAnswer(&cluster, kTailClosure));
  ASSERT_TRUE(tier.Close(id).ok());  // pre-crash session just unpins cleanly
}

// A session's cache survives RePin: only entries whose range was reassigned
// since the old pin drop; the rest keep their bytes.
TEST(PortalSessionTest, RePinKeepsUnaffectedCacheEntries) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.Sync().ok());

  PortalTier tier(&cluster);
  auto opened = tier.Open();
  ASSERT_TRUE(opened.ok());
  PortalSession* session = opened->get();
  SessionAnswer(session, kTailClosure);  // warm
  size_t warm_bytes = session->source().cache_bytes_used();
  ASSERT_GT(warm_bytes, 0u);

  core::PnodeRange range{refs[5].pnode, refs[5].pnode + 1};
  ASSERT_TRUE(cluster.MigrateRange(range, 3).ok());
  session->RePin();
  SessionAnswer(session, kTailClosure);
  // Only /f5's entries were dropped and refilled; no full flush happened.
  EXPECT_EQ(session->source().stats().cache_invalidations_full, 0u);
  EXPECT_GT(session->source().stats().cache_entries_invalidated, 0u);
  EXPECT_LT(session->source().stats().cache_entries_invalidated,
            session->source().stats().cache_hits +
                session->source().stats().cache_misses);
}

TEST(PortalTierTest, TenantQuotaIsolatesBudgets) {
  ClusterCoordinator cluster(SmallCluster(2));
  PortalTierOptions options;
  options.total_cache_bytes = 4u << 20;
  PortalTier tier(&cluster, options);
  tier.SetTenantQuota("alice", 1u << 20);

  PortalSessionOptions alice;
  alice.tenant = "alice";
  alice.cache_bytes = 1u << 20;
  auto first_alice = tier.Open(alice);
  ASSERT_TRUE(first_alice.ok());
  // Alice is at quota: her next open is rejected outright — not queued —
  // while Bob still fits in the tier budget.
  auto again = tier.Open(alice);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), Code::kNoSpace);
  EXPECT_EQ(tier.queued(), 0u);

  PortalSessionOptions bob;
  bob.tenant = "bob";
  bob.cache_bytes = 2u << 20;
  auto first_bob = tier.Open(bob);
  ASSERT_TRUE(first_bob.ok());
  EXPECT_EQ(tier.tenant_bytes_reserved("alice"), 1u << 20);
  EXPECT_EQ(tier.tenant_bytes_reserved("bob"), 2u << 20);
  EXPECT_EQ(tier.bytes_reserved(), 3u << 20);
  EXPECT_EQ(tier.admission_stats().admitted, 2u);
  EXPECT_EQ(tier.admission_stats().rejected_quota, 1u);
}

TEST(PortalTierTest, BudgetExhaustionQueuesThenAdmitsOnClose) {
  ClusterCoordinator cluster(SmallCluster(2));
  PortalTierOptions options;
  options.total_cache_bytes = 2u << 20;
  options.max_queued = 1;
  PortalTier tier(&cluster, options);

  PortalSessionOptions one_mb;
  one_mb.cache_bytes = 1u << 20;
  auto first = tier.Open(one_mb);
  auto second = tier.Open(one_mb);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Budget full: a third tenant (inside its own quota) parks in the queue,
  // a fourth finds the queue full. Distinct tenants, because the "default"
  // tenant's quota already equals the whole tier budget.
  PortalSessionOptions carol = one_mb;
  carol.tenant = "carol";
  auto third = tier.Open(carol);
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), Code::kUnavailable);
  EXPECT_EQ(tier.queued(), 1u);
  PortalSessionOptions dave = one_mb;
  dave.tenant = "dave";
  auto fourth = tier.Open(dave);
  EXPECT_FALSE(fourth.ok());
  EXPECT_EQ(fourth.status().code(), Code::kNoSpace);

  // A close frees bytes and admits the queued request FIFO.
  ASSERT_TRUE(tier.Close(first->id()).ok());
  EXPECT_EQ(tier.queued(), 0u);
  EXPECT_EQ(tier.open_sessions(), 2u);
  EXPECT_EQ(tier.bytes_reserved(), 2u << 20);
  const PortalAdmissionStats& stats = tier.admission_stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.admitted_from_queue, 1u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.rejected_budget, 1u);
}

// Regression: cache_bytes == 0 is a valid (cache-disabling) reservation;
// closing the second of two 0-byte sessions must not touch an already
// erased tenant ledger entry.
TEST(PortalTierTest, ZeroByteSessionsCloseCleanly) {
  ClusterCoordinator cluster(SmallCluster(2));
  PortalTier tier(&cluster);
  PortalSessionOptions zero;
  zero.cache_bytes = 0;
  auto a = tier.Open(zero);
  auto b = tier.Open(zero);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->Close();
  b->Close();
  EXPECT_EQ(tier.open_sessions(), 0u);
  EXPECT_EQ(tier.bytes_reserved(), 0u);
  EXPECT_EQ(tier.tenant_bytes_reserved("default"), 0u);
}

TEST(PortalTierTest, MetricsSurfaceSessionsAndAdmission) {
  ClusterCoordinator cluster(SmallCluster(2));
  PortalTierOptions options;
  options.total_cache_bytes = 2u << 20;
  PortalTier tier(&cluster, options);
  PortalSessionOptions one_mb;
  one_mb.cache_bytes = 1u << 20;
  auto first = tier.Open(one_mb);
  auto second = tier.Open(one_mb);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  tier.PublishMetrics();
  obs::MetricRegistry& m = cluster.env().obs().metrics();
  obs::Publish(&m, tier.admission_stats());
  EXPECT_EQ(m.GetGauge("portal.sessions_open").value(), 2);
  EXPECT_EQ(m.GetGauge("portal.bytes_reserved").value(),
            static_cast<int64_t>(2u << 20));
  EXPECT_EQ(m.GetGauge("portal.queue_depth").value(), 0);
  EXPECT_EQ(m.GetGauge("portal.admission.admitted").value(), 2);
  EXPECT_EQ(m.GetGauge("portal.admission.rejected_quota").value(), 0);
}

}  // namespace
}  // namespace pass::cluster
