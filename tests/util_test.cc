// Tests for src/util: status/result, md5, crc32, rng, encode, strings.

#include <gtest/gtest.h>

#include "src/util/crc32.h"
#include "src/util/encode.h"
#include "src/util/md5.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace pass {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), Code::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFound("/tmp/x");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Code::kNotFound);
  EXPECT_EQ(status.ToString(), "NotFound: /tmp/x");
}

TEST(StatusTest, AllConstructorsMapToDistinctCodes) {
  EXPECT_EQ(Exists("x").code(), Code::kExists);
  EXPECT_EQ(InvalidArgument("x").code(), Code::kInvalidArgument);
  EXPECT_EQ(BadFd("x").code(), Code::kBadFd);
  EXPECT_EQ(IsDir("x").code(), Code::kIsDir);
  EXPECT_EQ(NotDir("x").code(), Code::kNotDir);
  EXPECT_EQ(NotEmpty("x").code(), Code::kNotEmpty);
  EXPECT_EQ(NoSpace("x").code(), Code::kNoSpace);
  EXPECT_EQ(Permission("x").code(), Code::kPermission);
  EXPECT_EQ(IoError("x").code(), Code::kIoError);
  EXPECT_EQ(Stale("x").code(), Code::kStale);
  EXPECT_EQ(Busy("x").code(), Code::kBusy);
  EXPECT_EQ(Corrupt("x").code(), Code::kCorrupt);
  EXPECT_EQ(Unsupported("x").code(), Code::kUnsupported);
  EXPECT_EQ(Unavailable("x").code(), Code::kUnavailable);
  EXPECT_EQ(OutOfRange("x").code(), Code::kOutOfRange);
  EXPECT_EQ(Internal("x").code(), Code::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFound("gone");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  PASS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(IoError("disk on fire")).status().code(), Code::kIoError);
}

// RFC 1321 test vectors.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::HexHash(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::HexHash("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::HexHash("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::HexHash("message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::HexHash("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5::HexHash("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012345"
                   "6789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::HexHash("1234567890123456789012345678901234567890123456789012"
                         "3456789012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string data(100000, 'x');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + (i * 31) % 26);
  }
  Md5 incremental;
  size_t pos = 0;
  size_t chunk = 1;
  while (pos < data.size()) {
    size_t n = std::min(chunk, data.size() - pos);
    incremental.Update(data.data() + pos, n);
    pos += n;
    chunk = chunk * 2 + 1;
  }
  EXPECT_EQ(Md5ToHex(incremental.Finish()), Md5::HexHash(data));
}

TEST(Crc32Test, KnownVector) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "write-ahead provenance";
  uint32_t crc = Crc32(data);
  data[5] ^= 1;
  EXPECT_NE(Crc32(data), crc);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NameHasRequestedLength) {
  Rng rng(13);
  EXPECT_EQ(rng.NextName(12).size(), 12u);
}

TEST(EncodeTest, RoundTripScalars) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutU16(&buf, 0xbeef);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefull);
  PutI64(&buf, -42);
  PutF64(&buf, 3.25);
  PutBytes(&buf, "hello");

  Decoder in(buf);
  EXPECT_EQ(*in.U8(), 0xab);
  EXPECT_EQ(*in.U16(), 0xbeef);
  EXPECT_EQ(*in.U32(), 0xdeadbeefu);
  EXPECT_EQ(*in.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(*in.I64(), -42);
  EXPECT_EQ(*in.F64(), 3.25);
  EXPECT_EQ(*in.Bytes(), "hello");
  EXPECT_TRUE(in.done());
}

TEST(EncodeTest, VarintRoundTripAcrossWidths) {
  const uint64_t values[] = {0,    1,    0x7f,  0x80,   0x3fff, 0x4000,
                             1u << 20, 0xdeadbeef, ~0ull};
  std::string buf;
  for (uint64_t v : values) {
    PutVarint(&buf, v);
  }
  EXPECT_EQ(buf.size(), 1 + 1 + 1 + 2 + 2 + 3 + 3 + 5 + 10u);
  Decoder in(buf);
  for (uint64_t v : values) {
    EXPECT_EQ(*in.Varint(), v);
  }
  EXPECT_TRUE(in.done());
}

TEST(EncodeTest, TruncatedVarintIsCorrupt) {
  std::string buf;
  PutVarint(&buf, 0x4000);  // three bytes
  std::string cut = buf.substr(0, 2);
  Decoder in(cut);
  auto v = in.Varint();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Code::kCorrupt);
}

TEST(EncodeTest, TruncationIsCorruptNotCrash) {
  std::string buf;
  PutBytes(&buf, "hello world");
  std::string cut = buf.substr(0, 6);
  Decoder in(cut);
  auto bytes = in.Bytes();
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), Code::kCorrupt);
}

TEST(StringsTest, SplitJoin) {
  auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/mnt/nfs/file", "/mnt"));
  EXPECT_FALSE(StartsWith("/mnt", "/mnt/nfs"));
  EXPECT_TRUE(EndsWith("atlas-x.gif", ".gif"));
  EXPECT_FALSE(EndsWith("gif", "atlas.gif"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%05u", 42u), "00042");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.0 MB");
}

TEST(StringsTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("*.gif", "atlas-x.gif"));
  EXPECT_TRUE(GlobMatch("atlas-?.gif", "atlas-y.gif"));
  EXPECT_FALSE(GlobMatch("atlas-?.gif", "atlas-xy.gif"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("a*b*c", "a-xxx-b-yyy-c"));
  EXPECT_FALSE(GlobMatch("a*b*c", "a-xxx-c-yyy-b"));
}

}  // namespace
}  // namespace pass
