// Tests for MiniPy (§6.4): language semantics, file I/O through the kernel,
// origin propagation through wrapped types, the pa_wrap invocation model,
// and the documented operator-limitation (§6.5).

#include <gtest/gtest.h>

#include "src/minipy/minipy.h"
#include "src/workloads/machine.h"

namespace pass::minipy {
namespace {

using workloads::Machine;
using workloads::MachineOptions;

std::string RunPlain(Machine* machine, os::Pid pid, const std::string& src) {
  Interp interp(&machine->kernel(), pid, nullptr);
  auto out = interp.RunSource(src);
  EXPECT_TRUE(out.ok()) << out.status().ToString() << "\nsource:\n" << src;
  return out.value_or("");
}

TEST(MiniPyLangTest, ArithmeticAndPrint) {
  Machine machine;
  os::Pid pid = machine.Spawn("py");
  EXPECT_EQ(RunPlain(&machine, pid, "print(1 + 2 * 3)\n"), "7\n");
  EXPECT_EQ(RunPlain(&machine, pid, "print(7 // 2, 7 % 2, 7 / 2)\n"),
            "3 1 3.5\n");
  EXPECT_EQ(RunPlain(&machine, pid, "print(-3 + 1)\n"), "-2\n");
}

TEST(MiniPyLangTest, StringsListsDicts) {
  Machine machine;
  os::Pid pid = machine.Spawn("py");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "s = 'a,b,c'\n"
                     "parts = s.split(',')\n"
                     "print(len(parts), parts[1])\n"),
            "3 b\n");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "xs = [1, 2]\n"
                     "xs.append(3)\n"
                     "print(xs)\n"),
            "[1, 2, 3]\n");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "d = {'k': 41}\n"
                     "d['k'] = d['k'] + 1\n"
                     "print(d.get('k'), d.get('nope', 0))\n"),
            "42 0\n");
}

TEST(MiniPyLangTest, ControlFlow) {
  Machine machine;
  os::Pid pid = machine.Spawn("py");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "total = 0\n"
                     "for i in range(5):\n"
                     "    if i % 2 == 0:\n"
                     "        total = total + i\n"
                     "print(total)\n"),
            "6\n");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "i = 0\n"
                     "while True:\n"
                     "    i = i + 1\n"
                     "    if i == 3:\n"
                     "        break\n"
                     "print(i)\n"),
            "3\n");
}

TEST(MiniPyLangTest, FunctionsAndClosures) {
  Machine machine;
  os::Pid pid = machine.Spawn("py");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "def add(a, b):\n"
                     "    return a + b\n"
                     "def twice(x):\n"
                     "    return add(x, x)\n"
                     "print(twice(21))\n"),
            "42\n");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "def fib(n):\n"
                     "    if n < 2:\n"
                     "        return n\n"
                     "    return fib(n - 1) + fib(n - 2)\n"
                     "print(fib(10))\n"),
            "55\n");
}

TEST(MiniPyLangTest, ErrorsAreStatuses) {
  Machine machine;
  os::Pid pid = machine.Spawn("py");
  Interp interp(&machine.kernel(), pid, nullptr);
  EXPECT_FALSE(interp.RunSource("print(missing)\n").ok());
  Interp interp2(&machine.kernel(), pid, nullptr);
  EXPECT_FALSE(interp2.RunSource("x = [1][5]\n").ok());
  Interp interp3(&machine.kernel(), pid, nullptr);
  EXPECT_FALSE(interp3.RunSource("x = 1 / 0\n").ok());
  Interp interp4(&machine.kernel(), pid, nullptr);
  EXPECT_FALSE(interp4.RunSource("def f(:\n").ok());
}

TEST(MiniPyIoTest, FileRoundTripThroughKernel) {
  Machine machine;
  os::Pid pid = machine.Spawn("py");
  RunPlain(&machine, pid,
           "f = open('/data.txt', 'w')\n"
           "f.write('line1\\nline2\\n')\n"
           "f.close()\n");
  EXPECT_EQ(RunPlain(&machine, pid,
                     "f = open('/data.txt', 'r')\n"
                     "content = f.read()\n"
                     "f.close()\n"
                     "print(len(content.split('\\n')))\n"),
            "3\n");
}

class MiniPyPassTest : public ::testing::Test {
 protected:
  MiniPyPassTest()
      : machine_([] {
          MachineOptions options;
          options.with_pass = true;
          return options;
        }()),
        pid_(machine_.Spawn("python")),
        lib_(machine_.Lib(pid_)) {}

  std::string Run(const std::string& src) {
    Interp interp(&machine_.kernel(), pid_, &lib_);
    auto out = interp.RunSource(src);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    last_stats_ = interp.stats();
    return out.value_or("");
  }

  Machine machine_;
  os::Pid pid_;
  core::LibPass lib_;
  MiniPyStats last_stats_;
};

TEST_F(MiniPyPassTest, ReadTagsValuesWithOrigin) {
  os::Pid setup = machine_.Spawn("setup");
  ASSERT_TRUE(machine_.kernel().WriteFile(setup, "/in.xml", "<x>1</x>").ok());
  // Copy through MiniPy: output must descend from input via the script.
  Run("f = open('/in.xml', 'r')\n"
      "data = f.read()\n"
      "f.close()\n"
      "g = open('/out.xml', 'w')\n"
      "g.write(data)\n"
      "g.close()\n");
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  auto in_pnodes = machine_.db()->PnodesByName("/in.xml");
  auto out_pnodes = machine_.db()->PnodesByName("/out.xml");
  ASSERT_EQ(in_pnodes.size(), 1u);
  ASSERT_EQ(out_pnodes.size(), 1u);
  bool linked = false;
  for (core::Version v : machine_.db()->VersionsOf(out_pnodes[0])) {
    for (const core::ObjectRef& input :
         machine_.db()->Inputs({out_pnodes[0], v})) {
      if (input.pnode == in_pnodes[0]) {
        linked = true;
      }
    }
  }
  EXPECT_TRUE(linked);
}

TEST_F(MiniPyPassTest, WrappedFunctionCreatesInvocationObjects) {
  os::Pid setup = machine_.Spawn("setup");
  ASSERT_TRUE(machine_.kernel().WriteFile(setup, "/crack1.xml",
                                          "heat=1.5 len=3")
                  .ok());
  Run("def plot_heating(doc):\n"
      "    return 'plot:' + doc\n"
      "plot = pa_wrap(plot_heating)\n"
      "f = open('/crack1.xml', 'r')\n"
      "doc = f.read()\n"
      "f.close()\n"
      "result = plot(doc)\n"
      "g = open('/plot.dat', 'w')\n"
      "g.write(result)\n"
      "g.close()\n");
  EXPECT_EQ(last_stats_.wrapped_calls, 1u);
  EXPECT_EQ(last_stats_.invocations_created, 1u);
  ASSERT_TRUE(machine_.waldo()->Drain().ok());

  // FUNCTION-typed objects exist, and the plot descends from the XML file
  // *through the invocation* (the §3.3 data-origin chain).
  auto functions = machine_.db()->PnodesByType("FUNCTION");
  EXPECT_GE(functions.size(), 2u);  // function + invocation
  auto plot = machine_.db()->PnodesByName("/plot.dat");
  auto xml = machine_.db()->PnodesByName("/crack1.xml");
  ASSERT_EQ(plot.size(), 1u);
  ASSERT_EQ(xml.size(), 1u);
  std::set<core::ObjectRef> seen;
  std::vector<core::ObjectRef> stack;
  for (core::Version v : machine_.db()->VersionsOf(plot[0])) {
    stack.push_back({plot[0], v});
  }
  bool reaches_xml = false;
  bool through_function = false;
  while (!stack.empty()) {
    core::ObjectRef ref = stack.back();
    stack.pop_back();
    if (!seen.insert(ref).second) {
      continue;
    }
    if (ref.pnode == xml[0]) {
      reaches_xml = true;
    }
    for (const core::Record& record :
         machine_.db()->RecordsOfAllVersions(ref.pnode)) {
      if (record.attr == core::Attr::kType &&
          std::get<std::string>(record.value) == "FUNCTION") {
        through_function = true;
      }
    }
    for (const core::ObjectRef& input : machine_.db()->Inputs(ref)) {
      stack.push_back(input);
    }
  }
  EXPECT_TRUE(reaches_xml);
  EXPECT_TRUE(through_function);
}

TEST_F(MiniPyPassTest, SubsetSelectionIsPrecise) {
  // §3.3: the script reads all XML files but uses only a subset; PA-Python
  // reports only the used ones via the wrapped call.
  os::Pid setup = machine_.Spawn("setup");
  ASSERT_TRUE(machine_.kernel().Mkdir(setup, "/xml").ok());
  ASSERT_TRUE(
      machine_.kernel().WriteFile(setup, "/xml/a.xml", "class=A heat=1").ok());
  ASSERT_TRUE(
      machine_.kernel().WriteFile(setup, "/xml/b.xml", "class=B heat=2").ok());
  Run("def analyze(doc):\n"
      "    return 'used:' + doc\n"
      "analyze_pa = pa_wrap(analyze)\n"
      "docs = []\n"
      "for name in listdir('/xml'):\n"
      "    f = open('/xml/' + name, 'r')\n"
      "    docs.append(f.read())\n"
      "    f.close()\n"
      "picked = None\n"
      "for d in docs:\n"
      "    if 'class=A' in d:\n"
      "        picked = d\n"
      "result = analyze_pa(picked)\n"
      "out = open('/result.dat', 'w')\n"
      "out.write(result)\n"
      "out.close()\n");
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  // The invocation object's INPUT set includes a.xml but not b.xml.
  auto a = machine_.db()->PnodesByName("/xml/a.xml");
  auto b = machine_.db()->PnodesByName("/xml/b.xml");
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  bool invocation_uses_a = false;
  bool invocation_uses_b = false;
  for (core::PnodeId fn : machine_.db()->PnodesByType("FUNCTION")) {
    for (core::Version v : machine_.db()->VersionsOf(fn)) {
      for (const core::ObjectRef& input : machine_.db()->Inputs({fn, v})) {
        invocation_uses_a |= input.pnode == a[0];
        invocation_uses_b |= input.pnode == b[0];
      }
    }
  }
  EXPECT_TRUE(invocation_uses_a);
  EXPECT_FALSE(invocation_uses_b);
}

TEST_F(MiniPyPassTest, OperatorsLoseProvenanceAsDocumented) {
  // §6.5: "while we could wrap functions, we lost provenance across
  // built-in operators". '+' drops the origin tag; methods keep it.
  os::Pid setup = machine_.Spawn("setup");
  ASSERT_TRUE(machine_.kernel().WriteFile(setup, "/src.txt", "abc").ok());
  Run("f = open('/src.txt', 'r')\n"
      "data = f.read()\n"
      "f.close()\n"
      "via_method = data.strip()\n"   // keeps origin
      "via_operator = data + ''\n"    // loses origin (built-in +)
      "m = open('/via_method.txt', 'w')\n"
      "m.write(via_method)\n"
      "m.close()\n"
      "o = open('/via_operator.txt', 'w')\n"
      "o.write(via_operator)\n"
      "o.close()\n");
  ASSERT_TRUE(machine_.waldo()->Drain().ok());
  auto src = machine_.db()->PnodesByName("/src.txt");
  ASSERT_EQ(src.size(), 1u);
  auto direct_edge_to_src = [&](const std::string& path) {
    for (core::PnodeId pnode : machine_.db()->PnodesByName(path)) {
      for (core::Version v : machine_.db()->VersionsOf(pnode)) {
        for (const core::ObjectRef& input :
             machine_.db()->Inputs({pnode, v})) {
          if (input.pnode == src[0]) {
            return true;
          }
        }
      }
    }
    return false;
  };
  EXPECT_TRUE(direct_edge_to_src("/via_method.txt"));
  EXPECT_FALSE(direct_edge_to_src("/via_operator.txt"));
}

TEST_F(MiniPyPassTest, UnwrappedRuntimeStillWorks) {
  // pa_wrap without PASS behaves like the plain function (graceful layer
  // absence).
  Machine vanilla;
  os::Pid pid = vanilla.Spawn("py");
  Interp interp(&vanilla.kernel(), pid, nullptr);
  auto out = interp.RunSource(
      "def f(x):\n"
      "    return x * 2\n"
      "g = pa_wrap(f)\n"
      "print(g(21))\n");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "42\n");
}

}  // namespace
}  // namespace pass::minipy
