// Tests for PQL (§5.7): lexer, parser, and evaluator — including the
// paper's sample anomaly query over a hand-built provenance graph.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/pql/eval.h"
#include "src/pql/lexer.h"
#include "src/pql/parser.h"
#include "src/pql/provdb_source.h"
#include "src/waldo/provdb.h"

namespace pass::pql {
namespace {

TEST(PqlLexerTest, TokenizesSampleQuery) {
  auto tokens = Tokenize(
      "select Ancestor from Provenance.file as Atlas "
      "Atlas.input* as Ancestor where Atlas.name = \"atlas-x.gif\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().kind, TokenKind::kSelect);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
  size_t stars = 0;
  for (const Token& token : *tokens) {
    if (token.kind == TokenKind::kStar) {
      ++stars;
    }
  }
  EXPECT_EQ(stars, 1u);
}

TEST(PqlLexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("SELECT x FROM Provenance.file AS x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSelect);
}

TEST(PqlLexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.5 'single' \"double\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[1].real_value, 3.5);
  EXPECT_EQ((*tokens)[2].text, "single");
  EXPECT_EQ((*tokens)[3].text, "double");
}

TEST(PqlLexerTest, CommentsSkipped) {
  auto tokens = Tokenize("select -- a comment\n x from Provenance.file as x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(PqlLexerTest, ErrorsOnBadInput) {
  EXPECT_FALSE(Tokenize("select `x`").ok());
  EXPECT_FALSE(Tokenize("select \"unterminated").ok());
}

TEST(PqlParserTest, PaperSampleStructure) {
  auto query = ParseQuery(
      "select Ancestor\n"
      "from Provenance.file as Atlas\n"
      "     Atlas.input* as Ancestor\n"
      "where Atlas.name = \"atlas-x.gif\"");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ((*query)->froms.size(), 2u);
  EXPECT_TRUE((*query)->froms[0].path.from_provenance);
  EXPECT_EQ((*query)->froms[0].path.root_set, "file");
  EXPECT_EQ((*query)->froms[0].variable, "Atlas");
  EXPECT_EQ((*query)->froms[1].path.variable, "Atlas");
  ASSERT_EQ((*query)->froms[1].path.steps.size(), 1u);
  EXPECT_EQ((*query)->froms[1].path.steps[0].closure, Closure::kStar);
  ASSERT_NE((*query)->where, nullptr);
}

TEST(PqlParserTest, InverseAndClosures) {
  auto query = ParseQuery(
      "select d from Provenance.file as f f.~input+ as d");
  ASSERT_TRUE(query.ok());
  const PathStep& step = (*query)->froms[1].path.steps[0];
  EXPECT_TRUE(step.inverse);
  EXPECT_EQ(step.closure, Closure::kPlus);
}

TEST(PqlParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("select").ok());
  EXPECT_FALSE(ParseQuery("select x").ok());
  EXPECT_FALSE(ParseQuery("select x from").ok());
  EXPECT_FALSE(ParseQuery("select x from Provenance.file").ok());  // no 'as'
  EXPECT_FALSE(ParseQuery("from Provenance.file as x").ok());
  EXPECT_FALSE(ParseQuery("select x from Provenance.file as x extra!").ok());
}

TEST(PqlParserTest, SubqueryAndAggregates) {
  auto query = ParseQuery(
      "select count(f.input*) as n from Provenance.file as f "
      "where f in (select g from Provenance.file as g)");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ((*query)->selects[0].expr.kind, Expr::Kind::kAggregate);
  EXPECT_EQ((*query)->selects[0].alias, "n");
}

// ---- Evaluation over a known graph -------------------------------------------
//
// Graph (paper Figure 1 in miniature):
//   atlas-x.gif(p1) <- softmean(p2, PROC) <- reslice1(p3, PROC)
//   softmean <- anatomy1.img(p4, FILE), reslice1 <- anatomy2.img(p5, FILE)
//   other.gif(p6) <- otherproc(p7)

class PqlEvalTest : public ::testing::Test {
 protected:
  PqlEvalTest() : source_(&db_), engine_(&source_) {
    Put({1, 0}, core::Record::Name("atlas-x.gif"));
    Put({1, 0}, core::Record::Type("FILE"));
    Put({2, 0}, core::Record::Name("softmean"));
    Put({2, 0}, core::Record::Type("PROC"));
    Put({3, 0}, core::Record::Name("reslice1"));
    Put({3, 0}, core::Record::Type("PROC"));
    Put({4, 0}, core::Record::Name("anatomy1.img"));
    Put({4, 0}, core::Record::Type("FILE"));
    Put({5, 0}, core::Record::Name("anatomy2.img"));
    Put({5, 0}, core::Record::Type("FILE"));
    Put({6, 0}, core::Record::Name("other.gif"));
    Put({6, 0}, core::Record::Type("FILE"));
    Put({7, 0}, core::Record::Name("otherproc"));
    Put({7, 0}, core::Record::Type("PROC"));

    Edge({1, 0}, {2, 0});  // atlas <- softmean
    Edge({2, 0}, {3, 0});  // softmean <- reslice1
    Edge({2, 0}, {4, 0});  // softmean <- anatomy1
    Edge({3, 0}, {5, 0});  // reslice1 <- anatomy2
    Edge({6, 0}, {7, 0});  // other <- otherproc
  }

  void Put(core::ObjectRef ref, core::Record record) {
    db_.Insert({ref, std::move(record)});
  }
  void Edge(core::ObjectRef child, core::ObjectRef parent) {
    db_.Insert({child, core::Record::Input(parent)});
  }

  std::set<std::string> NamesIn(const QueryResult& result) {
    std::set<std::string> names;
    for (const auto& row : result.rows) {
      for (const Value& value : row) {
        if (value.is_node()) {
          names.insert(db_.NameOf(value.AsNode().pnode));
        } else {
          names.insert(value.ToString());
        }
      }
    }
    return names;
  }

  waldo::ProvDb db_;
  ProvDbSource source_;
  Engine engine_;
};

TEST_F(PqlEvalTest, PaperSampleQueryFindsAllAncestors) {
  auto result = engine_.Run(
      "select Ancestor\n"
      "from Provenance.file as Atlas\n"
      "     Atlas.input* as Ancestor\n"
      "where Atlas.name = \"atlas-x.gif\"");
  ASSERT_TRUE(result.ok());
  auto names = NamesIn(*result);
  // Zero-or-more closure includes the file itself plus the full chain.
  EXPECT_EQ(names,
            (std::set<std::string>{"atlas-x.gif", "softmean", "reslice1",
                                   "anatomy1.img", "anatomy2.img"}));
}

TEST_F(PqlEvalTest, PlusClosureExcludesSelf) {
  auto result = engine_.Run(
      "select a from Provenance.file as f f.input+ as a "
      "where f.name = \"atlas-x.gif\"");
  ASSERT_TRUE(result.ok());
  auto names = NamesIn(*result);
  EXPECT_EQ(names.count("atlas-x.gif"), 0u);
  EXPECT_EQ(names.count("softmean"), 1u);
}

TEST_F(PqlEvalTest, SingleStepOnlyDirectAncestors) {
  auto result = engine_.Run(
      "select a from Provenance.file as f f.input as a "
      "where f.name = \"atlas-x.gif\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(NamesIn(*result), (std::set<std::string>{"softmean"}));
}

TEST_F(PqlEvalTest, InverseTraversalFindsDescendants) {
  auto result = engine_.Run(
      "select d from Provenance.file as f f.~input* as d "
      "where f.name = \"anatomy2.img\"");
  ASSERT_TRUE(result.ok());
  auto names = NamesIn(*result);
  EXPECT_EQ(names,
            (std::set<std::string>{"anatomy2.img", "reslice1", "softmean",
                                   "atlas-x.gif"}));
}

TEST_F(PqlEvalTest, RootSetsFilterByType) {
  auto files = engine_.Run("select f from Provenance.file as f");
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->rows.size(), 4u);
  auto procs = engine_.Run("select p from Provenance.process as p");
  ASSERT_TRUE(procs.ok());
  EXPECT_EQ(procs->rows.size(), 3u);
  auto all = engine_.Run("select o from Provenance.object as o");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 7u);
}

TEST_F(PqlEvalTest, AttributeProjection) {
  auto result = engine_.Run(
      "select a.name from Provenance.file as f f.input+ as a "
      "where f.name = \"other.gif\"");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].ToString(), "otherproc");
}

TEST_F(PqlEvalTest, MultiColumnSelect) {
  auto result = engine_.Run(
      "select f.name, count(f.input+) as ancestors "
      "from Provenance.file as f where f.name like \"atlas*\"");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].ToString(), "atlas-x.gif");
  EXPECT_EQ(result->rows[0][1].AsInt(), 4);
  EXPECT_EQ(result->columns[1], "ancestors");
}

TEST_F(PqlEvalTest, LikeGlobMatching) {
  auto result = engine_.Run(
      "select f.name from Provenance.file as f "
      "where f.name like \"*.img\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(NamesIn(*result),
            (std::set<std::string>{"anatomy1.img", "anatomy2.img"}));
}

TEST_F(PqlEvalTest, SubqueryWithIn) {
  // Files whose ancestry includes any PROC named softmean.
  auto result = engine_.Run(
      "select f.name from Provenance.file as f "
      "where \"softmean\" in (select a.name from f.input+ as a)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(NamesIn(*result), (std::set<std::string>{"atlas-x.gif"}));
}

TEST_F(PqlEvalTest, ExistsOverPath) {
  auto result = engine_.Run(
      "select f.name from Provenance.file as f "
      "where not exists(f.input)");
  ASSERT_TRUE(result.ok());
  // Leaves: files with no ancestors.
  EXPECT_EQ(NamesIn(*result),
            (std::set<std::string>{"anatomy1.img", "anatomy2.img"}));
}

TEST_F(PqlEvalTest, UnionMergesAndDedups) {
  auto result = engine_.Run(
      "select f.name from Provenance.file as f where f.name like \"*.img\" "
      "union "
      "select g.name from Provenance.file as g where g.name like "
      "\"anatomy1*\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(PqlEvalTest, AggregatesOverSubquery) {
  auto result = engine_.Run(
      "select count(select f from Provenance.file as f) as files "
      "from Provenance.object as unused_root "
      "where unused_root.pnode = 1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 4);
}

TEST_F(PqlEvalTest, NumericComparisonOnVirtualAttrs) {
  auto result = engine_.Run(
      "select o.pnode from Provenance.object as o where o.pnode <= 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(PqlEvalTest, UnboundVariableErrors) {
  auto result = engine_.Run(
      "select x from Provenance.file as f where ghost.name = \"x\"");
  EXPECT_FALSE(result.ok());
}

TEST_F(PqlEvalTest, CyclicVersionGraphDoesNotHang) {
  // Defensive: even a (corrupt) cyclic edge set terminates under closure.
  Edge({8, 0}, {9, 0});
  Edge({9, 0}, {8, 0});
  Put({8, 0}, core::Record::Type("FILE"));
  Put({8, 0}, core::Record::Name("cyc-a"));
  auto result = engine_.Run(
      "select a from Provenance.file as f f.input* as a "
      "where f.name = \"cyc-a\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(PqlEvalTest, TableRenderingIncludesLabels) {
  auto result = engine_.Run(
      "select f from Provenance.file as f where f.name = \"atlas-x.gif\"");
  ASSERT_TRUE(result.ok());
  std::string table = result->ToTable(&source_);
  EXPECT_NE(table.find("atlas-x.gif"), std::string::npos);
  EXPECT_NE(table.find("p1.v0"), std::string::npos);
}

// ---- Batched frontier ops ---------------------------------------------------

// Wraps a source and counts single-node vs batched calls: the evaluator
// must drive every link traversal and attribute lookup through the batched
// ops (whole frontiers), never the single-node fallbacks — that contract is
// what lets the federated source ship one RPC per shard per hop.
class CountingSource : public GraphSource {
 public:
  explicit CountingSource(const GraphSource* inner) : inner_(inner) {}

  std::vector<Node> RootSet(const std::string& name) const override {
    return inner_->RootSet(name);
  }
  ValueSet Attribute(const Node& node, const std::string& attr) const override {
    ++single_attribute_calls;
    return inner_->Attribute(node, attr);
  }
  std::vector<Node> Follow(const Node& node, const std::string& link,
                           bool inverse) const override {
    ++single_follow_calls;
    return inner_->Follow(node, link, inverse);
  }
  std::vector<std::vector<Node>> FollowMany(const std::vector<Node>& nodes,
                                            const std::string& link,
                                            bool inverse) const override {
    ++follow_many_calls;
    max_follow_batch = std::max(max_follow_batch, nodes.size());
    return inner_->FollowMany(nodes, link, inverse);
  }
  std::vector<ValueSet> AttributeMany(const std::vector<Node>& nodes,
                                      const std::string& attr) const override {
    ++attribute_many_calls;
    return inner_->AttributeMany(nodes, attr);
  }
  bool IsLink(const std::string& name) const override {
    return inner_->IsLink(name);
  }
  std::string NodeLabel(const Node& node) const override {
    return inner_->NodeLabel(node);
  }

  mutable uint64_t single_follow_calls = 0;
  mutable uint64_t single_attribute_calls = 0;
  mutable uint64_t follow_many_calls = 0;
  mutable uint64_t attribute_many_calls = 0;
  mutable size_t max_follow_batch = 0;

 private:
  const GraphSource* inner_;
};

TEST_F(PqlEvalTest, EvaluatorTraversesWholeFrontiersThroughBatchedOps) {
  CountingSource counting(&source_);
  Engine counting_engine(&counting);
  const std::string query =
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"atlas-x.gif\"";
  auto batched = counting_engine.Run(query);
  ASSERT_TRUE(batched.ok());

  // Never the single-node fallbacks, always the batched ops.
  EXPECT_EQ(counting.single_follow_calls, 0u);
  EXPECT_EQ(counting.single_attribute_calls, 0u);
  EXPECT_GT(counting.follow_many_calls, 0u);
  EXPECT_GT(counting.attribute_many_calls, 0u);
  // Level-synchronous BFS: softmean's two ancestors (reslice1, anatomy1)
  // expand as one two-node frontier, not two calls.
  EXPECT_EQ(counting.max_follow_batch, 2u);

  // Batching changes the call pattern, not the answer.
  auto plain = engine_.Run(query);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(NamesIn(*batched), NamesIn(*plain));
}

// ProvDbSource implements only the batched core; its single-node
// Follow/Attribute are GraphSource's defaulted frontier-of-one wrappers and
// must agree with the batched answers element-wise.
TEST_F(PqlEvalTest, DefaultSingleNodeOpsMatchBatchedCore) {
  std::vector<Node> nodes = source_.RootSet("file");
  ASSERT_FALSE(nodes.empty());
  auto follows = source_.FollowMany(nodes, "input", /*inverse=*/false);
  auto attrs = source_.AttributeMany(nodes, "name");
  ASSERT_EQ(follows.size(), nodes.size());
  ASSERT_EQ(attrs.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(follows[i], source_.Follow(nodes[i], "input", false));
    EXPECT_EQ(attrs[i].size(), source_.Attribute(nodes[i], "name").size());
  }
}

TEST(PqlLimitsTest, BindingExplosionIsBounded) {
  waldo::ProvDb db;
  for (int i = 0; i < 64; ++i) {
    db.Insert({{static_cast<core::PnodeId>(i + 1), 0},
               core::Record::Type("FILE")});
  }
  ProvDbSource source(&db);
  EvalLimits limits;
  limits.max_bindings = 100;
  Engine engine(&source, limits);
  // 64 x 64 = 4096 bindings > 100.
  auto result = engine.Run(
      "select a from Provenance.file as a Provenance.file as b");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Code::kUnavailable);
}

}  // namespace
}  // namespace pass::pql
