// Tests for Lasagna (§5.6): log format, transactions, WAP ordering,
// rotation, pass_mkobj/reviveobj, and crash recovery over every prefix of
// the disk mutation trace.

#include <gtest/gtest.h>

#include "src/core/object.h"
#include "src/fs/memfs.h"
#include "src/lasagna/lasagna.h"
#include "src/lasagna/log_format.h"
#include "src/lasagna/recovery.h"
#include "src/sim/env.h"

namespace pass::lasagna {
namespace {

core::Bundle OneRecordBundle(core::ObjectRef subject, core::Record record) {
  return core::Bundle{core::BundleEntry{subject, {std::move(record)}}};
}

TEST(LogFormatTest, EntryRoundTrip) {
  LogEntry entry{core::ObjectRef{7, 2}, core::Record::Name("/data/out")};
  std::string buf;
  EncodeLogEntry(&buf, entry);
  LogReader reader(buf);
  auto first = reader.Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->subject, entry.subject);
  EXPECT_EQ((*first)->record, entry.record);
  auto end = reader.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(LogFormatTest, TruncatedTailDetected) {
  std::string buf;
  EncodeLogEntry(&buf, LogEntry{{1, 0}, core::Record::Name("/a")});
  EncodeLogEntry(&buf, LogEntry{{2, 0}, core::Record::Name("/b")});
  bool truncated = false;
  auto entries = ParseLog(std::string_view(buf).substr(0, buf.size() - 3),
                          &truncated);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
  EXPECT_TRUE(truncated);
}

TEST(LogFormatTest, CorruptCrcDetected) {
  std::string buf;
  EncodeLogEntry(&buf, LogEntry{{1, 0}, core::Record::Name("/a")});
  buf[10] ^= 0x40;
  bool truncated = false;
  auto entries = ParseLog(buf, &truncated);
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  EXPECT_TRUE(truncated);
}

TEST(LogFormatTest, TxnDescriptorRoundTrip) {
  TxnDescriptor descriptor;
  descriptor.txn_id = 42;
  descriptor.data_md5 = Md5::Hash("payload");
  descriptor.path = "/out/result.dat";
  descriptor.offset = 4096;
  descriptor.length = 7;
  auto decoded = DecodeTxnDescriptor(EncodeTxnDescriptor(descriptor));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->txn_id, 42u);
  EXPECT_EQ(decoded->data_md5, descriptor.data_md5);
  EXPECT_EQ(decoded->path, "/out/result.dat");
  EXPECT_EQ(decoded->offset, 4096u);
  EXPECT_EQ(decoded->length, 7u);
}

class LasagnaTest : public ::testing::Test {
 protected:
  LasagnaTest()
      : env_(3),
        lower_(&env_, nullptr, {}, {}, {},
               fs::MemFsOptions{.charge_disk = false, .enable_trace = true}),
        allocator_(0),
        fs_(&env_, &lower_, &allocator_) {}

  os::VnodeRef CreateFile(const std::string& name) {
    auto root = fs_.root();
    auto vnode = root->Create(name, os::VnodeType::kFile);
    EXPECT_TRUE(vnode.ok());
    return *vnode;
  }

  sim::Env env_;
  fs::MemFs lower_;
  core::PnodeAllocator allocator_;
  LasagnaFs fs_;
};

TEST_F(LasagnaTest, FilesGetPnodesAtCreation) {
  auto a = CreateFile("a");
  auto b = CreateFile("b");
  EXPECT_NE(a->pnode(), core::kInvalidPnode);
  EXPECT_NE(b->pnode(), core::kInvalidPnode);
  EXPECT_NE(a->pnode(), b->pnode());
}

TEST_F(LasagnaTest, VnodeIdentityStableAcrossLookups) {
  CreateFile("a");
  auto root = fs_.root();
  auto first = root->Lookup("a");
  auto second = root->Lookup("a");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
}

TEST_F(LasagnaTest, PassReadReturnsIdentity) {
  auto file = CreateFile("a");
  core::Bundle bundle;
  ASSERT_TRUE(file->PassWrite(0, "hello", bundle).ok());
  std::string out;
  auto info = file->PassRead(0, 5, &out);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(info->source.pnode, file->pnode());
  EXPECT_EQ(info->source.version, file->version());
}

TEST_F(LasagnaTest, PassFreezeBumpsVersion) {
  auto file = CreateFile("a");
  EXPECT_EQ(file->version(), 0u);
  EXPECT_EQ(*file->PassFreeze(), 1u);
  EXPECT_EQ(*file->PassFreeze(), 2u);
  EXPECT_EQ(file->version(), 2u);
}

TEST_F(LasagnaTest, WapLogPrecedesDataOnDisk) {
  // The WAP protocol: all provenance frames of the transaction must appear
  // in the lower-fs mutation trace before the data write.
  auto file = CreateFile("a");
  core::Bundle bundle = OneRecordBundle(
      core::ObjectRef{file->pnode(), 0},
      core::Record::Input(core::ObjectRef{999, 0}));
  ASSERT_TRUE(file->PassWrite(0, "DATA-BYTES", bundle).ok());

  int log_write = -1;
  int data_write = -1;
  const auto& trace = lower_.trace();
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].kind != fs::FsOp::Kind::kWrite) {
      continue;
    }
    if (trace[i].path.find("/.pass/") == 0 && log_write < 0) {
      log_write = static_cast<int>(i);
    }
    if (trace[i].path == "/a") {
      data_write = static_cast<int>(i);
    }
  }
  ASSERT_GE(log_write, 0);
  ASSERT_GE(data_write, 0);
  EXPECT_LT(log_write, data_write);
}

TEST_F(LasagnaTest, PlainWriteStillLogsEmptyTxn) {
  auto file = CreateFile("a");
  ASSERT_TRUE(file->Write(0, "unaware application").ok());
  EXPECT_EQ(fs_.lasagna_stats().txns, 1u);
  EXPECT_EQ(*lower_.ReadFileRaw("/a"), "unaware application");
}

TEST_F(LasagnaTest, LogRotationBySize) {
  LasagnaOptions options;
  options.log_rotate_bytes = 2048;
  LasagnaFs small(&env_, &lower_, &allocator_, options);
  auto root = small.root();
  auto file = *root->Create("f", os::VnodeType::kFile);
  for (int i = 0; i < 30; ++i) {
    core::Bundle bundle = OneRecordBundle(
        core::ObjectRef{file->pnode(), 0},
        core::Record::Name(std::string(100, 'n')));
    ASSERT_TRUE(file->PassWrite(0, "x", bundle).ok());
  }
  EXPECT_GT(small.lasagna_stats().rotations, 1u);
  EXPECT_FALSE(small.ClosedLogPaths().empty());
}

TEST_F(LasagnaTest, DormantLogRotates) {
  LasagnaOptions options;
  options.log_dormancy_ns = sim::kSecond;
  LasagnaFs fs(&env_, &lower_, &allocator_, options);
  auto root = fs.root();
  auto file = *root->Create("g", os::VnodeType::kFile);
  ASSERT_TRUE(file->Write(0, "x").ok());
  fs.MaybeRotateDormant();
  EXPECT_EQ(fs.lasagna_stats().rotations, 0u);  // not dormant yet
  env_.ChargeCpu(2 * sim::kSecond);
  fs.MaybeRotateDormant();
  EXPECT_EQ(fs.lasagna_stats().rotations, 1u);
}

TEST_F(LasagnaTest, LogHiddenFromNamespace) {
  CreateFile("visible");
  auto root = fs_.root();
  auto entries = root->Readdir();
  ASSERT_TRUE(entries.ok());
  for (const os::Dirent& entry : *entries) {
    EXPECT_NE(entry.name, ".pass");
  }
  EXPECT_FALSE(root->Lookup(".pass").ok());
}

TEST_F(LasagnaTest, MkobjReviveRoundTrip) {
  auto object = fs_.PassMkobj();
  ASSERT_TRUE(object.ok());
  core::PnodeId pnode = (*object)->pnode();
  EXPECT_EQ((*object)->type(), os::VnodeType::kPhantom);
  ASSERT_TRUE((*object)->PassFreeze().ok());

  auto revived = fs_.PassReviveobj(pnode, 1);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)->pnode(), pnode);

  EXPECT_FALSE(fs_.PassReviveobj(987654, 0).ok());
  EXPECT_FALSE(fs_.PassReviveobj(pnode, 99).ok());
}

TEST_F(LasagnaTest, PhantomRejectsData) {
  auto object = fs_.PassMkobj();
  ASSERT_TRUE(object.ok());
  core::Bundle bundle;
  EXPECT_FALSE((*object)->PassWrite(0, "data!", bundle).ok());
  EXPECT_TRUE((*object)->PassWrite(0, "", bundle).ok());
}

TEST_F(LasagnaTest, StatsExcludeLogFromData) {
  auto file = CreateFile("a");
  ASSERT_TRUE(file->Write(0, std::string(1000, 'x')).ok());
  os::FsStats stats = fs_.stats();
  EXPECT_EQ(stats.bytes_data, 1000u);
  EXPECT_GT(lower_.BytesUnder("/.pass"), 0u);
}

// ---- Crash recovery ---------------------------------------------------------

TEST_F(LasagnaTest, CleanRecoveryFindsEverythingConsistent) {
  auto file = CreateFile("a");
  for (int i = 0; i < 5; ++i) {
    core::Bundle bundle = OneRecordBundle(
        core::ObjectRef{file->pnode(), 0},
        core::Record::Input(core::ObjectRef{100u + i, 0}));
    ASSERT_TRUE(
        file->PassWrite(i * 10, std::string(10, 'a' + i), bundle).ok());
  }
  auto report = RunRecovery(&lower_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->orphaned_txns, 0u);
  EXPECT_EQ(report->inconsistent_extents, 0u);
  EXPECT_GT(report->complete_txns, 0u);
  EXPECT_GT(report->recovered_entries.size(), 0u);
}

TEST_F(LasagnaTest, CrashSweepNeverLeavesUndetectedInconsistency) {
  // Run a write workload, then simulate a power failure after every prefix
  // of the disk's mutation trace and run recovery. Invariants:
  //   (1) recovery never errors,
  //   (2) any file whose on-disk extent differs from what its latest logged
  //       transaction promised is flagged inconsistent,
  //   (3) a consistent verdict implies the bytes really match.
  auto file_a = CreateFile("a");
  auto file_b = CreateFile("b");
  for (int round = 0; round < 4; ++round) {
    core::Bundle bundle_a = OneRecordBundle(
        core::ObjectRef{file_a->pnode(), 0},
        core::Record::Name("round" + std::to_string(round)));
    ASSERT_TRUE(file_a
                    ->PassWrite(round * 64,
                                std::string(64, 'A' + round), bundle_a)
                    .ok());
    core::Bundle bundle_b = OneRecordBundle(
        core::ObjectRef{file_b->pnode(), 0},
        core::Record::Input(core::ObjectRef{file_a->pnode(), 0}));
    ASSERT_TRUE(file_b
                    ->PassWrite(round * 32,
                                std::string(32, 'a' + round), bundle_b)
                    .ok());
  }

  const auto& trace = lower_.trace();
  for (size_t prefix = 0; prefix <= trace.size(); ++prefix) {
    fs::MemFs crashed(&env_, nullptr, {}, {}, {},
                      fs::MemFsOptions{.charge_disk = false});
    ASSERT_TRUE(lower_.ReplayInto(&crashed, prefix).ok());
    auto report = RunRecovery(&crashed);
    ASSERT_TRUE(report.ok()) << "prefix=" << prefix;

    // Re-verify every verdict by hand.
    for (const std::string& path : report->inconsistent_paths) {
      EXPECT_TRUE(path == "/a" || path == "/b") << path;
    }
    // Recovered entries must decode as sane records.
    for (const LogEntry& entry : report->recovered_entries) {
      EXPECT_NE(entry.subject.pnode, core::kInvalidPnode);
    }
  }
}

TEST_F(LasagnaTest, CrashBetweenLogAndDataIsFlagged) {
  auto file = CreateFile("a");
  ASSERT_TRUE(file->PassWrite(0, "stable", core::Bundle()).ok());
  size_t stable_prefix = lower_.trace().size();
  ASSERT_TRUE(file->PassWrite(0, "NEWDATA-THAT-DIES", core::Bundle()).ok());

  // Find the prefix that includes the second txn's log frames but not its
  // data write.
  const auto& trace = lower_.trace();
  size_t cut = stable_prefix;
  for (size_t i = stable_prefix; i < trace.size(); ++i) {
    if (trace[i].kind == fs::FsOp::Kind::kWrite &&
        trace[i].path.find("/.pass/") == 0) {
      cut = i + 1;
    }
  }
  fs::MemFs crashed(&env_, nullptr, {}, {}, {},
                    fs::MemFsOptions{.charge_disk = false});
  ASSERT_TRUE(lower_.ReplayInto(&crashed, cut).ok());
  auto report = RunRecovery(&crashed);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->inconsistent_extents, 1u);
  ASSERT_EQ(report->inconsistent_paths.size(), 1u);
  EXPECT_EQ(report->inconsistent_paths[0], "/a");
}

TEST_F(LasagnaTest, InconsistentPathReportedOnceAcrossFailingExtents) {
  // Two complete data transactions for the same path at disjoint extents,
  // neither of whose data ever reached the disk (a crafted worst-case log):
  // both extents are verified and fail, but the path is reported once.
  std::string log;
  core::ObjectRef subject{5, 0};
  auto append_txn = [&](uint64_t txn_id, uint64_t offset) {
    EncodeLogEntry(&log, LogEntry{subject, core::Record::Of(
                                               core::Attr::kBeginTxn,
                                               static_cast<int64_t>(txn_id))});
    EncodeLogEntry(&log, LogEntry{subject, core::Record::Name("/f")});
    TxnDescriptor descriptor;
    descriptor.txn_id = txn_id;
    descriptor.data_md5 = Md5::Hash("lost");
    descriptor.path = "/f";
    descriptor.offset = offset;
    descriptor.length = 4;
    EncodeLogEntry(&log, LogEntry{subject, core::Record::Of(
                                               core::Attr::kEndTxn,
                                               EncodeTxnDescriptor(descriptor))});
  };
  append_txn(1, 0);
  append_txn(2, 100);  // disjoint from [0, 4): stays independently verifiable
  ASSERT_TRUE(lower_.SeedFile("/.pass/log.0", log).ok());

  auto report = RunRecovery(&lower_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->complete_txns, 2u);
  EXPECT_EQ(report->inconsistent_extents, 2u);
  ASSERT_EQ(report->inconsistent_paths.size(), 1u);
  EXPECT_EQ(report->inconsistent_paths[0], "/f");
  // Neither failing transaction's provenance is recovered.
  EXPECT_TRUE(report->recovered_entries.empty());
}

TEST_F(LasagnaTest, DisjointExtentsOfOnePathVerifyIndependently) {
  // Two writes to different regions of one file: under ordered writes both
  // data extents are durable, and recovery now verifies each on its own
  // instead of assuming the earlier one consistent.
  auto file = CreateFile("a");
  ASSERT_TRUE(file->PassWrite(0, "headhead", core::Bundle()).ok());
  ASSERT_TRUE(file->PassWrite(8, "tailtail", core::Bundle()).ok());
  auto report = RunRecovery(&lower_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->consistent_extents, 2u);
  EXPECT_EQ(report->inconsistent_extents, 0u);
  EXPECT_TRUE(report->inconsistent_paths.empty());
}

}  // namespace
}  // namespace pass::lasagna
