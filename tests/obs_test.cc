// Tests for the sim-time observability layer: histogram bucketing and
// quantiles, label-keyed series isolation, span nesting and cross-RPC
// parent linkage, exporter determinism, and the acceptance criteria that
// one Sync() and one federated closure each render as a single connected
// span tree with per-shard children — all stamped in pure sim time.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/federated_source.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/stats_bridge.h"
#include "src/obs/trace.h"
#include "src/pql/eval.h"
#include "src/sim/clock.h"
#include "src/util/logging.h"

namespace pass::obs {
namespace {

// ---- Histogram ------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketLow(0), 0u);
  EXPECT_EQ(Histogram::BucketHigh(0), 1u);
  EXPECT_EQ(Histogram::BucketLow(1), 1u);
  EXPECT_EQ(Histogram::BucketHigh(1), 2u);
  EXPECT_EQ(Histogram::BucketLow(5), 16u);
  EXPECT_EQ(Histogram::BucketHigh(5), 32u);
  EXPECT_EQ(Histogram::BucketLow(64), 1ull << 63);

  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(16);
  h.Record(31);
  EXPECT_EQ(h.buckets()[0], 1u);  // {0}
  EXPECT_EQ(h.buckets()[1], 1u);  // [1, 2)
  EXPECT_EQ(h.buckets()[2], 2u);  // [2, 4)
  EXPECT_EQ(h.buckets()[5], 2u);  // [16, 32)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 53u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
}

TEST(HistogramTest, ConstantDistributionReportsTheConstant) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(64);
  }
  // Quantiles clamp to the observed [min, max], so every quantile of a
  // constant distribution is that constant, exactly.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 64.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 64.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 64.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 64.0);
  EXPECT_DOUBLE_EQ(h.mean(), 64.0);
}

TEST(HistogramTest, QuantilesOnKnownDistribution) {
  // 99 samples of 100 ns and one of 100000 ns: p50 must sit near the bulk,
  // p99+ must reach into the outlier's bucket.
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Record(100);
  }
  h.Record(100000);
  double p50 = h.Quantile(0.5);
  double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, Histogram::BucketLow(7));  // 100 lives in [64, 128)
  EXPECT_LT(p50, Histogram::BucketHigh(7));
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100000.0);
  // Monotone in q across the whole range.
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, EmptyHistogramIsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// ---- Registry -------------------------------------------------------------

TEST(MetricRegistryTest, LabelsKeySeparateSeries) {
  MetricRegistry reg;
  reg.GetCounter("ingest.flushes", {{"shard", "1"}}).Add(5);
  reg.GetCounter("ingest.flushes", {{"shard", "2"}}).Add(7);
  EXPECT_EQ(reg.GetCounter("ingest.flushes", {{"shard", "1"}}).value(), 5u);
  EXPECT_EQ(reg.GetCounter("ingest.flushes", {{"shard", "2"}}).value(), 7u);
  // A different name with the same labels is yet another series.
  EXPECT_EQ(reg.GetCounter("ingest.batches", {{"shard", "1"}}).value(), 0u);
}

TEST(MetricRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricRegistry reg;
  Counter& a = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(CanonicalLabels({{"b", "2"}, {"a", "1"}}), "a=1;b=2");
  EXPECT_EQ(CanonicalLabels({}), "");
}

TEST(MetricRegistryTest, ResetZeroesButKeepsSeriesRegistered) {
  MetricRegistry reg;
  reg.GetCounter("c", {{"shard", "0"}}).Add(9);
  reg.GetHistogram("h").Record(1234);
  reg.GetGauge("g").Set(-5);
  std::string before = reg.DumpText();
  EXPECT_NE(before.find("c{shard=0} 9"), std::string::npos);

  reg.Reset();
  EXPECT_EQ(reg.GetCounter("c", {{"shard", "0"}}).value(), 0u);
  EXPECT_EQ(reg.GetHistogram("h").count(), 0u);
  EXPECT_EQ(reg.GetGauge("g").value(), 0);
  // The dump still lists every series — phases can be diffed line-by-line.
  std::string after = reg.DumpText();
  EXPECT_NE(after.find("c{shard=0} 0"), std::string::npos);
  EXPECT_NE(after.find("histogram h{}"), std::string::npos);
}

TEST(MetricRegistryTest, CsvDumpFollowsBenchConvention) {
  MetricRegistry reg;
  reg.GetCounter("ops", {{"shard", "1"}}).Add(2);
  reg.GetHistogram("lat_ns").Record(50);
  std::string csv = reg.DumpCsv();
  for (const auto& line : {std::string("csv,metric,counter,ops,shard=1,"),
                           std::string("csv,metric,histogram,lat_ns,,")}) {
    EXPECT_NE(csv.find(line), std::string::npos) << csv;
  }
}

// ---- Tracing --------------------------------------------------------------

TEST(TraceTest, DisabledCollectorRecordsNothing) {
  sim::Clock clock;
  TraceCollector trace(&clock);
  EXPECT_EQ(trace.StartSpan("noop"), 0u);
  {
    ScopedSpan span(&trace, "noop2");
    EXPECT_EQ(span.id(), 0u);
  }
  ScopedSpan null_span(nullptr, "no-collector");  // must not crash
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_FALSE(trace.CurrentContext().valid());
}

TEST(TraceTest, SpansNestByStackDiscipline) {
  sim::Clock clock;
  TraceCollector trace(&clock);
  trace.set_enabled(true);

  uint64_t outer = trace.StartSpan("outer");
  clock.Advance(100);
  uint64_t inner = trace.StartSpan("inner", /*shard=*/2);
  clock.Advance(50);
  trace.EndSpan(inner);
  clock.Advance(25);
  trace.EndSpan(outer);

  ASSERT_EQ(trace.spans().size(), 2u);
  const SpanRecord& o = trace.spans()[0];
  const SpanRecord& i = trace.spans()[1];
  EXPECT_EQ(o.parent_id, 0u);
  EXPECT_EQ(i.parent_id, o.id);
  EXPECT_EQ(i.trace_id, o.trace_id);
  EXPECT_EQ(i.shard, 2);
  // Pure sim-clock stamps.
  EXPECT_EQ(o.start_ns, 0);
  EXPECT_EQ(i.start_ns, 100);
  EXPECT_EQ(i.end_ns, 150);
  EXPECT_EQ(o.end_ns, 175);
  EXPECT_EQ(trace.open_spans(), 0u);
}

TEST(TraceTest, ContextPropagationLinksAcrossRpcBoundary) {
  sim::Clock clock;
  TraceCollector trace(&clock);
  trace.set_enabled(true);

  // Sender: open the rpc span, capture the context "shipped" in the payload.
  uint64_t rpc = trace.StartSpan("rpc.send");
  TraceContext ctx = trace.CurrentContext();
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(ctx.span_id, rpc);
  trace.EndSpan(rpc);

  // Receiver: no call stack connects it, but the context parents its span.
  uint64_t serve = trace.StartSpan(ctx, "shard.serve", /*shard=*/1);
  trace.EndSpan(serve);

  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].parent_id, rpc);
  EXPECT_EQ(trace.spans()[1].trace_id, trace.spans()[0].trace_id);
}

TEST(TraceTest, ChromeExportHasBalancedEventsPerTrack) {
  sim::Clock clock;
  TraceCollector trace(&clock);
  trace.set_enabled(true);
  uint64_t a = trace.StartSpan("a");
  clock.Advance(1000);
  uint64_t b = trace.StartSpan("b", 0);
  trace.EndSpan(b);  // zero-duration span: B and E share a timestamp
  trace.EndSpan(a);
  uint64_t open = trace.StartSpan("still-open");  // must be skipped
  (void)open;

  std::string json = trace.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  size_t begins = 0, ends = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos;
       ++pos) {
    ++begins;
  }
  for (size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(json.find("still-open"), std::string::npos);
}

// ---- Cluster integration --------------------------------------------------

cluster::ClusterOptions SmallCluster(int shards) {
  cluster::ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = 16;
  return options;
}

void BuildChain(cluster::ClusterCoordinator* cluster, int files) {
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(i % cluster->shard_count(),
                                         "/f" + std::to_string(i), "payload",
                                         sources);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
}

// Every span reachable from exactly one root, and the root is `root_name`.
void ExpectSingleTree(const std::vector<SpanRecord>& spans,
                      const std::string& root_name, int want_shard_children) {
  ASSERT_FALSE(spans.empty());
  std::map<uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    by_id[s.id] = &s;
  }
  int roots = 0;
  uint64_t trace_id = spans.front().trace_id;
  std::set<int> shards_seen;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, trace_id) << s.name << " left the tree";
    if (s.parent_id == 0) {
      ++roots;
      EXPECT_EQ(s.name, root_name);
    } else {
      ASSERT_TRUE(by_id.count(s.parent_id))
          << s.name << " has a dangling parent";
    }
    if (s.shard >= 0) {
      shards_seen.insert(s.shard);
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_GE(static_cast<int>(shards_seen.size()), want_shard_children);
}

TEST(ObsClusterTest, OneSyncIsOneConnectedSpanTree) {
  cluster::ClusterCoordinator cluster(SmallCluster(3));
  BuildChain(&cluster, 9);

  TraceCollector& trace = cluster.env().obs().trace();
  trace.set_enabled(true);
  ASSERT_TRUE(cluster.Sync().ok());
  trace.set_enabled(false);

  // The whole Sync — per-shard log recovery, replication batches, and the
  // remote applies on the far side of the simulated RPCs — hangs off the
  // one cluster.sync root, with children on every shard.
  ExpectSingleTree(trace.spans(), "cluster.sync",
                   /*want_shard_children=*/cluster.shard_count());
  bool saw_remote_apply = false;
  for (const SpanRecord& s : trace.spans()) {
    if (s.name == "shard.apply_batch") {
      saw_remote_apply = true;
      ASSERT_TRUE(s.parent_id != 0);
    }
  }
  EXPECT_TRUE(saw_remote_apply);

  // The registry saw the same activity.
  MetricRegistry& reg = cluster.env().obs().metrics();
  EXPECT_EQ(reg.GetCounter("cluster.syncs").value(), 1u);
  EXPECT_EQ(reg.GetHistogram("cluster.sync_ns").count(), 1u);
  EXPECT_GT(reg.GetHistogram("cluster.sync_ns").max(), 0u);
}

TEST(ObsClusterTest, FederatedQueryIsOneConnectedSpanTree) {
  cluster::ClusterCoordinator cluster(SmallCluster(3));
  BuildChain(&cluster, 9);
  ASSERT_TRUE(cluster.Sync().ok());

  cluster::FederatedSource source = cluster.Source(/*portal_shard=*/0);
  TraceCollector& trace = cluster.env().obs().trace();
  trace.set_enabled(true);
  {
    // The portal wraps each query in one root span; every hop, every
    // per-shard RPC, and every remote serve nests under it.
    ScopedSpan query_span(&trace, "pql.query");
    pql::Engine engine(&source);
    auto result = engine.Run(
        "select Ancestor from Provenance.file as F F.input* as Ancestor "
        "where F.name = \"/f8\"");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->rows.size(), 1u);
  }
  trace.set_enabled(false);

  ExpectSingleTree(trace.spans(), "pql.query", /*want_shard_children=*/2);
  std::set<std::string> names;
  for (const SpanRecord& s : trace.spans()) {
    names.insert(s.name);
  }
  EXPECT_TRUE(names.count("query.root_set"));
  EXPECT_TRUE(names.count("query.follow_hop"));
  EXPECT_TRUE(names.count("rpc.follow"));
  EXPECT_TRUE(names.count("shard.serve_follow"));
}

TEST(ObsClusterTest, TracingNeverAdvancesSimTime) {
  // Identical seeds and workloads; the only difference is tracing. The
  // simulated clocks must agree to the nanosecond.
  cluster::ClusterCoordinator plain(SmallCluster(3));
  cluster::ClusterCoordinator traced(SmallCluster(3));
  traced.env().obs().trace().set_enabled(true);

  BuildChain(&plain, 12);
  BuildChain(&traced, 12);
  ASSERT_TRUE(plain.Sync().ok());
  ASSERT_TRUE(traced.Sync().ok());
  ASSERT_TRUE(plain.Rebalance().migrations >= 0);
  ASSERT_TRUE(traced.Rebalance().migrations >= 0);

  EXPECT_GT(traced.env().obs().trace().spans().size(), 0u);
  EXPECT_EQ(plain.env().clock().now(), traced.env().clock().now());
}

TEST(ObsClusterTest, ExportersAreDeterministic) {
  auto run = [](std::string* json, std::string* text) {
    cluster::ClusterCoordinator cluster(SmallCluster(3));
    cluster.env().obs().trace().set_enabled(true);
    BuildChain(&cluster, 9);
    ASSERT_TRUE(cluster.Sync().ok());
    cluster::FederatedSource source = cluster.Source(0);
    pql::Engine engine(&source);
    auto result = engine.Run(
        "select Ancestor from Provenance.file as F F.input* as Ancestor "
        "where F.name = \"/f8\"");
    ASSERT_TRUE(result.ok());
    Publish(&cluster.env().obs().metrics(), source.stats());
    *json = cluster.env().obs().trace().ChromeTraceJson();
    *text = cluster.env().obs().metrics().DumpText();
  };
  std::string json_a, text_a, json_b, text_b;
  run(&json_a, &text_a);
  run(&json_b, &text_b);
  // Same seed, same workload: byte-identical trace and metric dumps.
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(text_a, text_b);
  EXPECT_FALSE(json_a.empty());
  EXPECT_NE(text_a.find("histogram"), std::string::npos);
}

// ---- ResetStats satellites ------------------------------------------------

TEST(ObsClusterTest, ResetStatsZeroesHolderCounters) {
  cluster::ClusterCoordinator cluster(SmallCluster(2));
  BuildChain(&cluster, 6);
  ASSERT_TRUE(cluster.Sync().ok());

  cluster::FederatedSource source = cluster.Source(0);
  pql::Engine engine(&source);
  ASSERT_TRUE(engine
                  .Run("select Ancestor from Provenance.file as F "
                       "F.input* as Ancestor where F.name = \"/f5\"")
                  .ok());
  EXPECT_GT(source.stats().remote_ops, 0u);
  size_t warm_bytes = source.cache_bytes_used();
  EXPECT_GT(warm_bytes, 0u);
  source.ResetStats();
  // Counters drop; the cache itself (and its contents) survive, so the next
  // query measures a pure warm-cache phase.
  EXPECT_EQ(source.stats().remote_ops, 0u);
  EXPECT_EQ(source.stats().cache_hits, 0u);
  EXPECT_EQ(source.cache_bytes_used(), warm_bytes);

  auto& machine = cluster.machine(0);
  EXPECT_GT(machine.volume()->lasagna_stats().txns, 0u);
  machine.volume()->ResetStats();
  EXPECT_EQ(machine.volume()->lasagna_stats().txns, 0u);
}

TEST(ObsClusterTest, StatsBridgePublishesIntoRegistry) {
  cluster::ClusterCoordinator cluster(SmallCluster(2));
  BuildChain(&cluster, 6);
  ASSERT_TRUE(cluster.Sync().ok());

  MetricRegistry reg;  // a private registry: Publish works against any
  Publish(&reg, cluster.ingest_stats());
  Publish(&reg, cluster.machine(0).volume()->lasagna_stats(),
          {{"shard", "0"}});
  EXPECT_GT(reg.GetGauge("ingest.entries_examined").value(), 0);
  EXPECT_GT(reg.GetGauge("lasagna.txns", {{"shard", "0"}}).value(), 0);
}

// ---- PASS_LOG_LEVEL satellite ---------------------------------------------

TEST(LoggingTest, LogLevelFromNameParsesNamesAndDigits) {
  EXPECT_EQ(LogLevelFromName("debug", LogLevel::kNone), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromName("INFO", LogLevel::kNone), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromName("Warn", LogLevel::kNone), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromName("warning", LogLevel::kNone), LogLevel::kWarning);
  EXPECT_EQ(LogLevelFromName("error", LogLevel::kNone), LogLevel::kError);
  EXPECT_EQ(LogLevelFromName("none", LogLevel::kDebug), LogLevel::kNone);
  EXPECT_EQ(LogLevelFromName("0", LogLevel::kNone), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromName("3", LogLevel::kNone), LogLevel::kError);
  EXPECT_EQ(LogLevelFromName("bogus", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(LogLevelFromName("", LogLevel::kInfo), LogLevel::kInfo);
}

}  // namespace
}  // namespace pass::obs
