// Tests for src/os: paths, VFS resolution, kernel syscall semantics.

#include <gtest/gtest.h>

#include <memory>

#include "src/fs/memfs.h"
#include "src/os/kernel.h"
#include "src/os/path.h"
#include "src/sim/env.h"

namespace pass::os {
namespace {

TEST(PathTest, Normalize) {
  EXPECT_EQ(NormalizePath("/a/b/c"), "/a/b/c");
  EXPECT_EQ(NormalizePath("/a//b/./c/"), "/a/b/c");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizePath("/../.."), "/");
  EXPECT_EQ(NormalizePath("x/y", "/home"), "/home/x/y");
  EXPECT_EQ(NormalizePath("", "/cwd"), "/cwd");
}

TEST(PathTest, Components) {
  auto parts = PathComponents("/a/b/c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_TRUE(PathComponents("/").empty());
}

TEST(PathTest, DirBaseJoin) {
  EXPECT_EQ(DirName("/a/b/c"), "/a/b");
  EXPECT_EQ(DirName("/a"), "/");
  EXPECT_EQ(BaseName("/a/b/c"), "c");
  EXPECT_EQ(JoinPath("/", "x"), "/x");
  EXPECT_EQ(JoinPath("/a", "x"), "/a/x");
}

class KernelTest : public ::testing::Test {
 protected:
  KernelTest()
      : env_(1),
        fs_(&env_, nullptr, {}, {}, {},
            fs::MemFsOptions{.name = "memfs", .charge_disk = false}),
        kernel_(&env_) {
    EXPECT_TRUE(kernel_.Mount("/", &fs_).ok());
    pid_ = kernel_.Spawn("test");
  }

  sim::Env env_;
  fs::MemFs fs_;
  Kernel kernel_;
  Pid pid_;
};

TEST_F(KernelTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f.txt", "hello world").ok());
  auto data = kernel_.ReadFile(pid_, "/f.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello world");
}

TEST_F(KernelTest, OpenMissingFileFails) {
  auto fd = kernel_.Open(pid_, "/nope", kOpenRead);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), Code::kNotFound);
}

TEST_F(KernelTest, OpenCreateExclFailsOnExisting) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "x").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenWrite | kOpenCreate | kOpenExcl);
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), Code::kExists);
}

TEST_F(KernelTest, TruncResetsContent) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "0123456789").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenWrite | kOpenTrunc);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Write(pid_, *fd, "ab").ok());
  ASSERT_TRUE(kernel_.Close(pid_, *fd).ok());
  EXPECT_EQ(*kernel_.ReadFile(pid_, "/f"), "ab");
}

TEST_F(KernelTest, AppendWritesAtEnd) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "abc").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenWrite | kOpenAppend);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Write(pid_, *fd, "def").ok());
  ASSERT_TRUE(kernel_.Close(pid_, *fd).ok());
  EXPECT_EQ(*kernel_.ReadFile(pid_, "/f"), "abcdef");
}

TEST_F(KernelTest, LseekSetCurEnd) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "0123456789").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*kernel_.Lseek(pid_, *fd, 4, 0), 4u);
  std::string out;
  ASSERT_TRUE(kernel_.Read(pid_, *fd, 2, &out).ok());
  EXPECT_EQ(out, "45");
  EXPECT_EQ(*kernel_.Lseek(pid_, *fd, -1, 1), 5u);
  EXPECT_EQ(*kernel_.Lseek(pid_, *fd, -2, 2), 8u);
  auto bad = kernel_.Lseek(pid_, *fd, -100, 1);
  EXPECT_FALSE(bad.ok());
}

TEST_F(KernelTest, ReadingBeyondEofReturnsShort) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "abc").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenRead);
  std::string out;
  EXPECT_EQ(*kernel_.Read(pid_, *fd, 100, &out), 3u);
  EXPECT_EQ(out, "abc");
  EXPECT_EQ(*kernel_.Read(pid_, *fd, 100, &out), 0u);
}

TEST_F(KernelTest, WriteOnReadOnlyFdFails) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "abc").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenRead);
  auto n = kernel_.Write(pid_, *fd, "x");
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), Code::kBadFd);
}

TEST_F(KernelTest, MkdirReaddirUnlinkRmdir) {
  ASSERT_TRUE(kernel_.Mkdir(pid_, "/d").ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/d/a", "1").ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/d/b", "2").ok());
  auto entries = kernel_.Readdir(pid_, "/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(kernel_.Rmdir(pid_, "/d").code(), Code::kNotEmpty);
  ASSERT_TRUE(kernel_.Unlink(pid_, "/d/a").ok());
  ASSERT_TRUE(kernel_.Unlink(pid_, "/d/b").ok());
  ASSERT_TRUE(kernel_.Rmdir(pid_, "/d").ok());
  EXPECT_FALSE(kernel_.Stat(pid_, "/d").ok());
}

TEST_F(KernelTest, RenameMovesAndReplaces) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/src", "data").ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/dst", "old").ok());
  ASSERT_TRUE(kernel_.Rename(pid_, "/src", "/dst").ok());
  EXPECT_FALSE(kernel_.Stat(pid_, "/src").ok());
  EXPECT_EQ(*kernel_.ReadFile(pid_, "/dst"), "data");
}

TEST_F(KernelTest, RenameAcrossDirectories) {
  ASSERT_TRUE(kernel_.Mkdir(pid_, "/a").ok());
  ASSERT_TRUE(kernel_.Mkdir(pid_, "/b").ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/a/f", "x").ok());
  ASSERT_TRUE(kernel_.Rename(pid_, "/a/f", "/b/g").ok());
  EXPECT_EQ(*kernel_.ReadFile(pid_, "/b/g"), "x");
}

TEST_F(KernelTest, PipeMovesBytesBetweenFds) {
  auto fds = kernel_.Pipe(pid_);
  ASSERT_TRUE(fds.ok());
  auto [rfd, wfd] = *fds;
  ASSERT_TRUE(kernel_.Write(pid_, wfd, "through the pipe").ok());
  std::string out;
  ASSERT_TRUE(kernel_.Read(pid_, rfd, 7, &out).ok());
  EXPECT_EQ(out, "through");
  ASSERT_TRUE(kernel_.Read(pid_, rfd, 100, &out).ok());
  EXPECT_EQ(out, " the pipe");
}

TEST_F(KernelTest, ForkSharesOpenFileOffsets) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "0123456789").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenRead);
  ASSERT_TRUE(fd.ok());
  auto child = kernel_.Fork(pid_);
  ASSERT_TRUE(child.ok());
  std::string out;
  ASSERT_TRUE(kernel_.Read(pid_, *fd, 3, &out).ok());
  ASSERT_TRUE(kernel_.Read(*child, *fd, 3, &out).ok());
  EXPECT_EQ(out, "345");  // child continues where parent stopped
}

TEST_F(KernelTest, ExecRenamesProcess) {
  ASSERT_TRUE(kernel_.Mkdir(pid_, "/bin").ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/bin/tool", "#!binary").ok());
  ASSERT_TRUE(kernel_.Exec(pid_, "/bin/tool", {"tool", "-v"}).ok());
  auto proc = kernel_.GetProcess(pid_);
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ((*proc)->name(), "tool");
  ASSERT_EQ((*proc)->argv().size(), 2u);
}

TEST_F(KernelTest, ExitClosesFds) {
  auto fd = kernel_.Open(pid_, "/f", kOpenWrite | kOpenCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(kernel_.Exit(pid_, 0).ok());
  auto proc = kernel_.GetProcess(pid_);
  ASSERT_TRUE(proc.ok());
  EXPECT_TRUE((*proc)->exited());
  EXPECT_TRUE((*proc)->fds().empty());
}

TEST_F(KernelTest, ChdirAffectsRelativePaths) {
  ASSERT_TRUE(kernel_.Mkdir(pid_, "/work").ok());
  ASSERT_TRUE(kernel_.Chdir(pid_, "/work").ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "rel.txt", "here").ok());
  EXPECT_EQ(*kernel_.ReadFile(pid_, "/work/rel.txt"), "here");
}

TEST_F(KernelTest, Dup2SharesOffset) {
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", "0123456789").ok());
  auto fd = kernel_.Open(pid_, "/f", kOpenRead);
  ASSERT_TRUE(kernel_.Dup2(pid_, *fd, 99).ok());
  std::string out;
  ASSERT_TRUE(kernel_.Read(pid_, *fd, 4, &out).ok());
  ASSERT_TRUE(kernel_.Read(pid_, 99, 4, &out).ok());
  EXPECT_EQ(out, "4567");
}

TEST_F(KernelTest, WritevCountsAllBuffers) {
  auto fd = kernel_.Open(pid_, "/f", kOpenWrite | kOpenCreate);
  auto n = kernel_.Writev(pid_, *fd, {"ab", "cd", "ef"});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 6u);
  ASSERT_TRUE(kernel_.Close(pid_, *fd).ok());
  EXPECT_EQ(*kernel_.ReadFile(pid_, "/f"), "abcdef");
}

TEST_F(KernelTest, SyscallsChargeTime) {
  sim::Nanos before = env_.clock().now();
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/f", std::string(1 << 16, 'x')).ok());
  EXPECT_GT(env_.clock().now(), before);
}

TEST_F(KernelTest, MultipleMounts) {
  fs::MemFs other(&env_, nullptr, {}, {}, {},
                  fs::MemFsOptions{.name = "other", .charge_disk = false});
  ASSERT_TRUE(kernel_.Mount("/mnt/nfs", &other).ok());
  ASSERT_TRUE(kernel_.WriteFile(pid_, "/mnt/nfs/remote.txt", "far").ok());
  EXPECT_EQ(*other.ReadFileRaw("/remote.txt"), "far");
  EXPECT_FALSE(fs_.ExistsRaw("/mnt/nfs/remote.txt"));
}

}  // namespace
}  // namespace pass::os
