// Tests for src/fs/memfs: the ext3-stand-in (zones, cache model, stats,
// mutation trace + crash replay).

#include <gtest/gtest.h>

#include "src/fs/memfs.h"
#include "src/sim/env.h"

namespace pass::fs {
namespace {

class MemFsTest : public ::testing::Test {
 protected:
  MemFsTest()
      : env_(1),
        disk_(&env_.clock()),
        fs_(&env_, &disk_, sim::DiskZone(8ull << 30, 60ull << 30),
            sim::DiskZone(0, 128ull << 20),
            sim::DiskZone(128ull << 20, 4ull << 30),
            MemFsOptions{.enable_trace = true}) {}

  sim::Env env_;
  sim::Disk disk_;
  MemFs fs_;
};

TEST_F(MemFsTest, SeedAndRawReadDoNotChargeDisk) {
  ASSERT_TRUE(fs_.SeedFile("/input/a.dat", "cold data").ok());
  EXPECT_EQ(disk_.stats().reads + disk_.stats().writes, 0u);
  EXPECT_EQ(*fs_.ReadFileRaw("/input/a.dat"), "cold data");
  EXPECT_EQ(disk_.stats().reads, 0u);
}

TEST_F(MemFsTest, ColdReadChargesOnceThenCached) {
  ASSERT_TRUE(fs_.SeedFile("/a", std::string(8192, 'z')).ok());
  auto vnode = fs_.ResolvePath("/a");
  ASSERT_TRUE(vnode.ok());
  std::string out;
  ASSERT_TRUE((*vnode)->Read(0, 4096, &out).ok());
  uint64_t after_first = disk_.stats().reads;
  EXPECT_EQ(after_first, 1u);
  ASSERT_TRUE((*vnode)->Read(4096, 4096, &out).ok());
  EXPECT_EQ(disk_.stats().reads, after_first);  // page cache
}

TEST_F(MemFsTest, WritesChargeDataZoneAndJournal) {
  auto root = fs_.root();
  auto file = root->Create("f", os::VnodeType::kFile);
  ASSERT_TRUE(file.ok());
  uint64_t journal_writes = disk_.stats().writes;
  EXPECT_GE(journal_writes, 1u);  // create journaled
  ASSERT_TRUE((*file)->Write(0, "hello").ok());
  EXPECT_GT(disk_.stats().writes, journal_writes);
}

TEST_F(MemFsTest, StatsCountFilesAndBytes) {
  ASSERT_TRUE(fs_.SeedFile("/x/a", "12345").ok());
  ASSERT_TRUE(fs_.SeedFile("/x/b", "123").ok());
  os::FsStats stats = fs_.stats();
  EXPECT_EQ(stats.files, 2u);
  EXPECT_EQ(stats.bytes_data, 8u);
  EXPECT_EQ(fs_.BytesUnder("/x"), 8u);
  EXPECT_EQ(fs_.BytesUnder("/nope"), 0u);
}

TEST_F(MemFsTest, ListAndExistsRaw) {
  ASSERT_TRUE(fs_.SeedFile("/d/one", "1").ok());
  ASSERT_TRUE(fs_.SeedFile("/d/two", "2").ok());
  auto names = fs_.ListDirRaw("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
  EXPECT_TRUE(fs_.ExistsRaw("/d/one"));
  EXPECT_FALSE(fs_.ExistsRaw("/d/three"));
}

TEST_F(MemFsTest, TraceRecordsMutations) {
  auto root = fs_.root();
  auto file = root->Create("f", os::VnodeType::kFile);
  ASSERT_TRUE((*file)->Write(0, "abc").ok());
  ASSERT_TRUE(root->Unlink("f").ok());
  ASSERT_GE(fs_.trace().size(), 3u);
  EXPECT_EQ(fs_.trace()[0].kind, FsOp::Kind::kCreate);
  EXPECT_EQ(fs_.trace()[1].kind, FsOp::Kind::kWrite);
  EXPECT_EQ(fs_.trace().back().kind, FsOp::Kind::kUnlink);
}

TEST_F(MemFsTest, LargeWritesTraceInChunks) {
  auto root = fs_.root();
  auto file = root->Create("big", os::VnodeType::kFile);
  ASSERT_TRUE((*file)->Write(0, std::string(10000, 'x')).ok());
  size_t write_ops = 0;
  for (const FsOp& op : fs_.trace()) {
    if (op.kind == FsOp::Kind::kWrite) {
      ++write_ops;
      EXPECT_LE(op.data.size(), 4096u);
    }
  }
  EXPECT_EQ(write_ops, 3u);  // 4096 + 4096 + 1808
}

TEST_F(MemFsTest, ReplayPrefixReconstructsIntermediateState) {
  auto root = fs_.root();
  auto file = root->Create("f", os::VnodeType::kFile);
  ASSERT_TRUE((*file)->Write(0, "version-one").ok());
  size_t mid = fs_.trace().size();
  ASSERT_TRUE((*file)->Write(0, "version-TWO").ok());

  MemFs replayed(&env_, nullptr, {}, {}, {},
                 MemFsOptions{.charge_disk = false});
  ASSERT_TRUE(fs_.ReplayInto(&replayed, mid).ok());
  EXPECT_EQ(*replayed.ReadFileRaw("/f"), "version-one");

  MemFs full(&env_, nullptr, {}, {}, {}, MemFsOptions{.charge_disk = false});
  ASSERT_TRUE(fs_.ReplayInto(&full, fs_.trace().size()).ok());
  EXPECT_EQ(*full.ReadFileRaw("/f"), "version-TWO");
}

TEST_F(MemFsTest, ReplayHandlesRenameAndUnlink) {
  auto root = fs_.root();
  auto file = root->Create("a", os::VnodeType::kFile);
  ASSERT_TRUE((*file)->Write(0, "payload").ok());
  ASSERT_TRUE(fs_.Rename(root, "a", root, "b").ok());
  MemFs replayed(&env_, nullptr, {}, {}, {},
                 MemFsOptions{.charge_disk = false});
  ASSERT_TRUE(fs_.ReplayInto(&replayed, fs_.trace().size()).ok());
  EXPECT_FALSE(replayed.ExistsRaw("/a"));
  EXPECT_EQ(*replayed.ReadFileRaw("/b"), "payload");
}

TEST_F(MemFsTest, SpecialZonePrefixAllocatesSeparately) {
  // Writes to /.pass land in the special zone, far from data-zone writes.
  ASSERT_TRUE(fs_.WriteFileRaw("/.pass/log.0", "").ok());
  auto log = fs_.ResolvePath("/.pass/log.0");
  auto root = fs_.root();
  auto file = root->Create("data", os::VnodeType::kFile);
  ASSERT_TRUE((*file)->Write(0, std::string(4096, 'd')).ok());
  uint64_t seeks_before = disk_.stats().seeks;
  // Alternate appends: every switch between zones must seek.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*log)->Write(i * 100, std::string(100, 'p')).ok());
    ASSERT_TRUE(
        (*file)->Write(4096 + i * 4096, std::string(4096, 'd')).ok());
  }
  EXPECT_GE(disk_.stats().seeks - seeks_before, 19u);
}

TEST_F(MemFsTest, RenameOverExistingReplacesTarget) {
  ASSERT_TRUE(fs_.SeedFile("/old", "old-bits").ok());
  ASSERT_TRUE(fs_.SeedFile("/new", "new-bits").ok());
  auto root = fs_.root();
  ASSERT_TRUE(fs_.Rename(root, "new", root, "old").ok());
  EXPECT_EQ(*fs_.ReadFileRaw("/old"), "new-bits");
  EXPECT_EQ(fs_.stats().files, 1u);
}

}  // namespace
}  // namespace pass::fs
