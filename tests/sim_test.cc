// Tests for src/sim: virtual clock, seek-modelled disk, zones, network.

#include <gtest/gtest.h>

#include "src/sim/async.h"
#include "src/sim/clock.h"
#include "src/sim/disk.h"
#include "src/sim/env.h"
#include "src/sim/net.h"

namespace pass::sim {
namespace {

TEST(ClockTest, AdvanceAccumulates) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(kSecond);
  clock.Advance(500 * kMilli);
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.5);
}

TEST(DiskTest, SequentialWritesPayNoSeek) {
  Clock clock;
  Disk disk(&clock);
  disk.Write(0, 4096);
  disk.Write(4096, 4096);
  disk.Write(8192, 4096);
  EXPECT_EQ(disk.stats().seeks, 0u);
  EXPECT_EQ(disk.stats().writes, 3u);
  EXPECT_EQ(disk.stats().bytes_written, 3u * 4096u);
}

TEST(DiskTest, FarAccessPaysSeek) {
  Clock clock;
  Disk disk(&clock);
  disk.Write(0, 4096);
  Nanos before = clock.now();
  disk.Write(40ull << 30, 4096);  // 40 GB away
  Nanos far_cost = clock.now() - before;
  EXPECT_EQ(disk.stats().seeks, 1u);

  before = clock.now();
  disk.Write((40ull << 30) + 4096, 4096);  // adjacent
  Nanos near_cost = clock.now() - before;
  EXPECT_GT(far_cost, near_cost * 10);
}

TEST(DiskTest, SeekCostGrowsWithDistance) {
  Clock clock;
  Disk disk(&clock);
  // Seek 4 GB.
  disk.Write(0, 512);
  Nanos t0 = clock.now();
  disk.Write(4ull << 30, 512);
  Nanos small_seek = clock.now() - t0;
  // Seek 64 GB.
  disk.Write(0, 512);
  t0 = clock.now();
  disk.Write(64ull << 30, 512);
  Nanos big_seek = clock.now() - t0;
  EXPECT_GT(big_seek, small_seek);
}

TEST(DiskTest, TransferScalesWithBytes) {
  Clock clock;
  Disk disk(&clock);
  disk.Write(0, 1);
  Nanos t0 = clock.now();
  disk.Write(1, 1 << 20);
  Nanos cost = clock.now() - t0;
  // 1 MB at 16 ns/byte is ~16.8ms; no seek (adjacent).
  EXPECT_GT(cost, 10 * kMilli);
  EXPECT_LT(cost, 30 * kMilli);
}

TEST(DiskTest, InterleavedZonesCauseSeekStorm) {
  // The mechanism behind the paper's elapsed-time overheads: alternate
  // between a data zone and a provenance-log zone and every access seeks.
  Clock clock;
  Disk data_only_disk(&clock);
  for (int i = 0; i < 100; ++i) {
    data_only_disk.Write(8ull << 30 | (uint64_t)i * 4096, 4096);
  }
  uint64_t no_interference_seeks = data_only_disk.stats().seeks;

  Disk interleaved(&clock);
  for (int i = 0; i < 100; ++i) {
    interleaved.Write(8ull << 30 | (uint64_t)i * 4096, 4096);
    interleaved.Write((1ull << 30) + (uint64_t)i * 512, 512);  // log zone
  }
  EXPECT_GT(interleaved.stats().seeks, no_interference_seeks + 150);
}

TEST(DiskZoneTest, BumpAllocationAndWrap) {
  DiskZone zone(1000, 100);
  EXPECT_EQ(zone.Allocate(40), 1000u);
  EXPECT_EQ(zone.Allocate(40), 1040u);
  // Wraps rather than overflowing the zone.
  EXPECT_EQ(zone.Allocate(40), 1000u);
}

TEST(NetworkTest, RoundTripChargesRttAndBytes) {
  Clock clock;
  Network net(&clock);
  net.RoundTrip(100, 100);
  Nanos small = clock.now();
  net.RoundTrip(1 << 20, 100);
  Nanos big = clock.now() - small;
  EXPECT_GT(big, small);  // payload dominates RTT for 1MB
  EXPECT_EQ(net.stats().round_trips, 2u);
  EXPECT_EQ(net.stats().bytes_sent, 100u + (1u << 20));
}

TEST(EnvTest, SharedClockAccumulatesAllCosts) {
  Env env(1);
  Disk disk(&env.clock());
  Network net(&env.clock());
  env.ChargeCpu(kMilli);
  disk.Write(0, 4096);
  net.RoundTrip(64, 64);
  EXPECT_GT(env.clock().now(), kMilli + 200 * kMicro);
}

TEST(EnvTest, RngSeedFlowsFromEnv) {
  Env a(99);
  Env b(99);
  EXPECT_EQ(a.rng().Next(), b.rng().Next());
}

TEST(AsyncTimelineTest, ScheduleDoesNotAdvanceClock) {
  Clock clock;
  AsyncTimeline timeline(&clock);
  Nanos done = timeline.Schedule(5 * kMilli);
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(done, 5 * kMilli);
  EXPECT_EQ(timeline.InFlight(), 1u);
  EXPECT_EQ(timeline.stats().busy_ns, 5 * kMilli);
}

TEST(AsyncTimelineTest, ChannelIsSerialized) {
  // Two transfers on one channel queue back to back, even when both are
  // scheduled at the same instant.
  Clock clock;
  AsyncTimeline timeline(&clock);
  EXPECT_EQ(timeline.Schedule(kMilli), kMilli);
  EXPECT_EQ(timeline.Schedule(kMilli), 2 * kMilli);
  clock.Advance(10 * kMilli);
  // The channel freed in the past: the next transfer starts now.
  EXPECT_EQ(timeline.Schedule(kMilli), 11 * kMilli);
}

TEST(AsyncTimelineTest, ForegroundWorkCoversCompletionsForFree) {
  Clock clock;
  AsyncTimeline timeline(&clock);
  timeline.Schedule(2 * kMilli);
  // The foreground clock sails past the completion: full overlap.
  clock.Advance(5 * kMilli);
  EXPECT_EQ(timeline.InFlight(), 0u);
  EXPECT_EQ(timeline.Drain(), 0u);
  EXPECT_EQ(clock.now(), 5 * kMilli);
  EXPECT_EQ(timeline.stats().exposed_ns, 0u);
  EXPECT_EQ(timeline.stats().overlap_fraction(), 1.0);
}

TEST(AsyncTimelineTest, DrainChargesOnlyTheUncoveredRemainder) {
  Clock clock;
  AsyncTimeline timeline(&clock);
  timeline.Schedule(10 * kMilli);
  clock.Advance(4 * kMilli);  // foreground covers 4 of the 10
  EXPECT_EQ(timeline.Drain(), 6 * kMilli);
  EXPECT_EQ(clock.now(), 10 * kMilli);
  EXPECT_EQ(timeline.stats().exposed_ns, 6 * kMilli);
  EXPECT_DOUBLE_EQ(timeline.stats().overlap_fraction(), 0.4);
  EXPECT_EQ(timeline.stats().drains, 1u);
}

TEST(AsyncTimelineTest, WaitForSlotBlocksAtTheWindow) {
  Clock clock;
  AsyncTimeline timeline(&clock);
  timeline.Schedule(kMilli);
  timeline.Schedule(kMilli);
  // Window of 2 is full: the wait advances to the oldest completion.
  EXPECT_EQ(timeline.WaitForSlot(2), kMilli);
  EXPECT_EQ(clock.now(), kMilli);
  EXPECT_EQ(timeline.InFlight(), 1u);
  EXPECT_EQ(timeline.stats().waits, 1u);
  // A free slot costs nothing.
  EXPECT_EQ(timeline.WaitForSlot(2), 0u);
  EXPECT_EQ(timeline.stats().waits, 1u);
}

TEST(AsyncTimelineTest, ResetForgetsInFlightWorkWithoutCharging) {
  Clock clock;
  AsyncTimeline timeline(&clock);
  timeline.Schedule(10 * kMilli);
  timeline.Reset();  // the channel died with a crashed process
  EXPECT_EQ(timeline.InFlight(), 0u);
  EXPECT_EQ(timeline.Drain(), 0u);
  EXPECT_EQ(clock.now(), 0u);
  // A post-crash schedule starts fresh from the current clock.
  EXPECT_EQ(timeline.Schedule(kMilli), kMilli);
}

}  // namespace
}  // namespace pass::sim
