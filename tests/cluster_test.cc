// Tests for the sharded provenance cluster: shard provisioning, batched
// cross-shard ingest/replication, and federated PQL queries.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/cluster/cluster.h"
#include "src/cluster/federated_source.h"
#include "src/cluster/ingest.h"
#include "src/pql/eval.h"
#include "src/pql/provdb_source.h"

namespace pass::cluster {
namespace {

ClusterOptions SmallCluster(int shards, size_t batch = 16) {
  ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = batch;
  return options;
}

// Build a lineage chain that hops across every shard round-robin:
// /f0 on shard 0, /f1 on shard 1 <- /f0, /f2 on shard 2 <- /f1, ...
std::vector<core::ObjectRef> BuildCrossShardChain(ClusterCoordinator* cluster,
                                                  int files) {
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    int shard = i % cluster->shard_count();
    std::string path = "/f" + std::to_string(i);
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(shard, path, "payload-" + path,
                                         sources);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
  return refs;
}

// Render a query result as a multiset of value strings (row order is not
// part of the contract being compared).
std::multiset<std::string> ResultSet(const pql::QueryResult& result) {
  std::multiset<std::string> out;
  for (const auto& row : result.rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    out.insert(line);
  }
  return out;
}

TEST(ClusterTest, ProvisionsShardsWithDisjointPnodeSpaces) {
  ClusterCoordinator cluster(SmallCluster(4));
  ASSERT_EQ(cluster.shard_count(), 4);
  for (int shard = 0; shard < 4; ++shard) {
    auto ref = cluster.WriteWithLineage(shard, "/probe", "x", {});
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(cluster.OwnerOf(ref->pnode), shard);
  }
  EXPECT_EQ(cluster.OwnerOf(core::PnodeId{200} << 48), -1);
}

TEST(ClusterTest, SyncRecoversEachShardLogIntoLocalDb) {
  ClusterCoordinator cluster(SmallCluster(3));
  for (int shard = 0; shard < 3; ++shard) {
    ASSERT_TRUE(cluster
                    .WriteWithLineage(shard, "/local" + std::to_string(shard),
                                      "data", {})
                    .ok());
  }
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_GT(cluster.entries_recovered(), 0u);
  for (int shard = 0; shard < 3; ++shard) {
    std::string name = "/local" + std::to_string(shard);
    EXPECT_EQ(cluster.shard_db(shard).PnodesByName(name).size(), 1u)
        << "shard " << shard;
    // Purely local provenance does not replicate.
    for (int other = 0; other < 3; ++other) {
      if (other != shard) {
        EXPECT_TRUE(cluster.shard_db(other).PnodesByName(name).empty());
      }
    }
    // Consumed logs are gone: a second sync is a no-op.
  }
  uint64_t recovered = cluster.entries_recovered();
  uint64_t batches = cluster.ingest_stats().batches_sent;
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_EQ(cluster.entries_recovered(), recovered);
  EXPECT_EQ(cluster.ingest_stats().batches_sent, batches);
}

TEST(ClusterTest, CrossShardEdgesReplicateToAncestorOwner) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  auto b = cluster.WriteWithLineage(1, "/b", "bbb", {*a});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cluster.Sync().ok());

  EXPECT_GT(cluster.ingest_stats().entries_replicated, 0u);
  EXPECT_GT(cluster.ingest_stats().batches_sent, 0u);

  // Shard 1 (subject owner) has the forward edge.
  EXPECT_FALSE(cluster.shard_db(1).Inputs(*b).empty());
  // Shard 0 (ancestor owner) got the replicated reverse edge: /a's
  // descendants include /b even though /b lives on another machine.
  auto outputs = cluster.shard_db(0).Outputs(*a);
  ASSERT_FALSE(outputs.empty());
  EXPECT_EQ(outputs[0].pnode, b->pnode);
}

TEST(ClusterTest, FederatedFollowRoutesAcrossShards) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 8);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  uint64_t trips_before = cluster.network().stats().round_trips;

  // Ancestors of /f5 (shard 1) include /f4 (shard 0).
  auto ancestors = source.Follow(refs[5], "input", /*inverse=*/false);
  bool found = false;
  for (const auto& node : ancestors) {
    found = found || node.pnode == refs[4].pnode;
  }
  EXPECT_TRUE(found);
  // Descendants of /f4 (shard 0) include /f5 (shard 1) via the replicated
  // reverse edge.
  auto descendants = source.Follow(refs[4], "input", /*inverse=*/true);
  found = false;
  for (const auto& node : descendants) {
    found = found || node.pnode == refs[5].pnode;
  }
  EXPECT_TRUE(found);
  // The /f5 lookup was remote from portal 0 and charged the network.
  EXPECT_GT(source.stats().remote_ops, 0u);
  EXPECT_GT(cluster.network().stats().round_trips, trips_before);
}

// Acceptance: a PQL ancestry query over a 4-shard cluster returns the same
// result set as the equivalent single-merged-database run.
TEST(ClusterTest, FederatedAncestryQueryMatchesMergedSingleDb) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  // A second, unrelated lineage island on shard 2.
  ASSERT_TRUE(cluster.WriteWithLineage(2, "/island", "iii", {}).ok());
  ASSERT_TRUE(cluster.Sync().ok());

  waldo::ProvDb merged;
  cluster.MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  FederatedSource federated_source = cluster.Source(/*portal_shard=*/0);

  const std::string kQueries[] = {
      // Full ancestry closure of the chain tail, crossing all 4 shards.
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f11\"",
      // Descendant closure from the chain head.
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/f0\"",
      // Direct ancestors only.
      "select A from Provenance.file as F F.input as A "
      "where F.name = \"/f7\"",
      // Typed root set spanning every shard.
      "select F.name from Provenance.file as F",
  };
  for (const std::string& query : kQueries) {
    pql::Engine merged_engine(&merged_source);
    pql::Engine federated_engine(&federated_source);
    auto want = merged_engine.Run(query);
    ASSERT_TRUE(want.ok()) << query << ": " << want.status().ToString();
    auto got = federated_engine.Run(query);
    ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
    EXPECT_EQ(ResultSet(*got), ResultSet(*want)) << query;
    EXPECT_FALSE(want->rows.empty()) << query;
  }
}

TEST(ClusterTest, BatchedIngestReducesRoundTripsAtEqualRecordCounts) {
  auto run = [](size_t batch) {
    ClusterCoordinator cluster(SmallCluster(2, batch));
    BuildCrossShardChain(&cluster, 30);
    EXPECT_TRUE(cluster.Sync().ok());
    return std::make_pair(cluster.ingest_stats(),
                          cluster.network().stats().round_trips);
  };
  auto [unbatched_stats, unbatched_trips] = run(1);
  auto [batched_stats, batched_trips] = run(64);

  // Same records crossed the wire either way.
  ASSERT_GT(unbatched_stats.entries_replicated, 0u);
  EXPECT_EQ(batched_stats.entries_replicated,
            unbatched_stats.entries_replicated);
  // Batching collapses round trips.
  EXPECT_LT(batched_stats.batches_sent, unbatched_stats.batches_sent);
  EXPECT_LT(batched_trips, unbatched_trips);
  EXPECT_EQ(unbatched_stats.batches_sent, unbatched_stats.entries_replicated);
}

TEST(ClusterTest, SingleShardClusterNeedsNoNetwork) {
  ClusterCoordinator cluster(SmallCluster(1));
  BuildCrossShardChain(&cluster, 5);
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_EQ(cluster.ingest_stats().entries_replicated, 0u);
  EXPECT_EQ(cluster.network().stats().round_trips, 0u);

  FederatedSource source = cluster.Source(0);
  pql::Engine engine(&source);
  auto result = engine.Run(
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f4\"");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rows.size(), 5u);
  EXPECT_EQ(cluster.network().stats().round_trips, 0u);
}

}  // namespace
}  // namespace pass::cluster
