// Tests for the sharded provenance cluster: shard provisioning, batched
// cross-shard ingest/replication, and federated PQL queries.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/cluster/cluster.h"
#include "src/cluster/federated_source.h"
#include "src/cluster/ingest.h"
#include "src/pql/eval.h"
#include "src/pql/provdb_source.h"

namespace pass::cluster {
namespace {

ClusterOptions SmallCluster(int shards, size_t batch = 16) {
  ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = batch;
  return options;
}

// Build a lineage chain that hops across every shard round-robin:
// /f0 on shard 0, /f1 on shard 1 <- /f0, /f2 on shard 2 <- /f1, ...
std::vector<core::ObjectRef> BuildCrossShardChain(ClusterCoordinator* cluster,
                                                  int files) {
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < files; ++i) {
    int shard = i % cluster->shard_count();
    std::string path = "/f" + std::to_string(i);
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster->WriteWithLineage(shard, path, "payload-" + path,
                                         sources);
    EXPECT_TRUE(ref.ok()) << ref.status().ToString();
    refs.push_back(*ref);
  }
  return refs;
}

// Render a query result as a multiset of value strings (row order is not
// part of the contract being compared).
std::multiset<std::string> ResultSet(const pql::QueryResult& result) {
  std::multiset<std::string> out;
  for (const auto& row : result.rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    out.insert(line);
  }
  return out;
}

TEST(ClusterTest, ProvisionsShardsWithDisjointPnodeSpaces) {
  ClusterCoordinator cluster(SmallCluster(4));
  ASSERT_EQ(cluster.shard_count(), 4);
  for (int shard = 0; shard < 4; ++shard) {
    auto ref = cluster.WriteWithLineage(shard, "/probe", "x", {});
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(cluster.OwnerOf(ref->pnode), shard);
  }
  EXPECT_EQ(cluster.OwnerOf(core::PnodeId{200} << 48), -1);
}

TEST(ClusterTest, SyncRecoversEachShardLogIntoLocalDb) {
  ClusterCoordinator cluster(SmallCluster(3));
  for (int shard = 0; shard < 3; ++shard) {
    ASSERT_TRUE(cluster
                    .WriteWithLineage(shard, "/local" + std::to_string(shard),
                                      "data", {})
                    .ok());
  }
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_GT(cluster.entries_recovered(), 0u);
  for (int shard = 0; shard < 3; ++shard) {
    std::string name = "/local" + std::to_string(shard);
    EXPECT_EQ(cluster.shard_db(shard).PnodesByName(name).size(), 1u)
        << "shard " << shard;
    // Purely local provenance does not replicate.
    for (int other = 0; other < 3; ++other) {
      if (other != shard) {
        EXPECT_TRUE(cluster.shard_db(other).PnodesByName(name).empty());
      }
    }
    // Consumed logs are gone: a second sync is a no-op.
  }
  uint64_t recovered = cluster.entries_recovered();
  uint64_t batches = cluster.ingest_stats().batches_sent;
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_EQ(cluster.entries_recovered(), recovered);
  EXPECT_EQ(cluster.ingest_stats().batches_sent, batches);
}

TEST(ClusterTest, CrossShardEdgesReplicateToAncestorOwner) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  auto b = cluster.WriteWithLineage(1, "/b", "bbb", {*a});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cluster.Sync().ok());

  EXPECT_GT(cluster.ingest_stats().entries_replicated, 0u);
  EXPECT_GT(cluster.ingest_stats().batches_sent, 0u);

  // Shard 1 (subject owner) has the forward edge.
  EXPECT_FALSE(cluster.shard_db(1).Inputs(*b).empty());
  // Shard 0 (ancestor owner) got the replicated reverse edge: /a's
  // descendants include /b even though /b lives on another machine.
  auto outputs = cluster.shard_db(0).Outputs(*a);
  ASSERT_FALSE(outputs.empty());
  EXPECT_EQ(outputs[0].pnode, b->pnode);
}

TEST(ClusterTest, FederatedFollowRoutesAcrossShards) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 8);
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource source = cluster.Source(/*portal_shard=*/0);
  uint64_t trips_before = cluster.network().stats().round_trips;

  // Ancestors of /f5 (shard 1) include /f4 (shard 0).
  auto ancestors = source.Follow(refs[5], "input", /*inverse=*/false);
  bool found = false;
  for (const auto& node : ancestors) {
    found = found || node.pnode == refs[4].pnode;
  }
  EXPECT_TRUE(found);
  // Descendants of /f4 (shard 0) include /f5 (shard 1) via the replicated
  // reverse edge.
  auto descendants = source.Follow(refs[4], "input", /*inverse=*/true);
  found = false;
  for (const auto& node : descendants) {
    found = found || node.pnode == refs[5].pnode;
  }
  EXPECT_TRUE(found);
  // The /f5 lookup was remote from portal 0 and charged the network.
  EXPECT_GT(source.stats().remote_ops, 0u);
  EXPECT_GT(cluster.network().stats().round_trips, trips_before);
}

// Acceptance: a PQL ancestry query over a 4-shard cluster returns the same
// result set as the equivalent single-merged-database run.
TEST(ClusterTest, FederatedAncestryQueryMatchesMergedSingleDb) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  // A second, unrelated lineage island on shard 2.
  ASSERT_TRUE(cluster.WriteWithLineage(2, "/island", "iii", {}).ok());
  ASSERT_TRUE(cluster.Sync().ok());

  waldo::ProvDb merged;
  cluster.MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  FederatedSource federated_source = cluster.Source(/*portal_shard=*/0);

  const std::string kQueries[] = {
      // Full ancestry closure of the chain tail, crossing all 4 shards.
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f11\"",
      // Descendant closure from the chain head.
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/f0\"",
      // Direct ancestors only.
      "select A from Provenance.file as F F.input as A "
      "where F.name = \"/f7\"",
      // Typed root set spanning every shard.
      "select F.name from Provenance.file as F",
  };
  for (const std::string& query : kQueries) {
    pql::Engine merged_engine(&merged_source);
    pql::Engine federated_engine(&federated_source);
    auto want = merged_engine.Run(query);
    ASSERT_TRUE(want.ok()) << query << ": " << want.status().ToString();
    auto got = federated_engine.Run(query);
    ASSERT_TRUE(got.ok()) << query << ": " << got.status().ToString();
    EXPECT_EQ(ResultSet(*got), ResultSet(*want)) << query;
    EXPECT_FALSE(want->rows.empty()) << query;
  }
}

TEST(ClusterTest, BatchedIngestReducesRoundTripsAtEqualRecordCounts) {
  auto run = [](size_t batch) {
    ClusterCoordinator cluster(SmallCluster(2, batch));
    BuildCrossShardChain(&cluster, 30);
    EXPECT_TRUE(cluster.Sync().ok());
    return std::make_pair(cluster.ingest_stats(),
                          cluster.network().stats().round_trips);
  };
  auto [unbatched_stats, unbatched_trips] = run(1);
  auto [batched_stats, batched_trips] = run(64);

  // Same records crossed the wire either way.
  ASSERT_GT(unbatched_stats.entries_replicated, 0u);
  EXPECT_EQ(batched_stats.entries_replicated,
            unbatched_stats.entries_replicated);
  // Batching collapses round trips.
  EXPECT_LT(batched_stats.batches_sent, unbatched_stats.batches_sent);
  EXPECT_LT(batched_trips, unbatched_trips);
  EXPECT_EQ(unbatched_stats.batches_sent, unbatched_stats.entries_replicated);
}

// ---- ShardMap routing / live migration --------------------------------------

// Multiset of all rows from running `query` through `source`.
std::multiset<std::string> RunQuery(pql::GraphSource* source,
                                    const std::string& query) {
  pql::Engine engine(source);
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? ResultSet(*result) : std::multiset<std::string>{};
}

const char* const kEquivalenceQueries[] = {
    "select Ancestor from Provenance.file as F F.input* as Ancestor "
    "where F.name = \"/f11\"",
    "select D from Provenance.file as F F.~input* as D "
    "where F.name = \"/f0\"",
    "select A from Provenance.file as F F.input as A "
    "where F.name = \"/f7\"",
    "select F.name from Provenance.file as F",
};

// Federated results must equal the merged single-database view.
void ExpectFederatedMatchesMerged(ClusterCoordinator* cluster,
                                  const std::string& context) {
  waldo::ProvDb merged;
  cluster->MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  FederatedSource federated = cluster->Source(/*portal_shard=*/0);
  for (const char* query : kEquivalenceQueries) {
    auto want = RunQuery(&merged_source, query);
    auto got = RunQuery(&federated, query);
    EXPECT_EQ(got, want) << context << ": " << query;
    EXPECT_FALSE(want.empty()) << context << ": " << query;
  }
}

TEST(ClusterTest, MigrateRangeMovesOwnershipAndRows) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  auto b = cluster.WriteWithLineage(1, "/b", "bbb", {*a});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cluster.Sync().ok());

  ASSERT_EQ(cluster.OwnerOf(a->pnode), 0);
  uint64_t epoch = cluster.shard_map().epoch();
  uint64_t trips = cluster.network().stats().round_trips;

  core::PnodeRange range{a->pnode, a->pnode + 1};
  auto report = cluster.MigrateRange(range, 1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->from, 0);
  EXPECT_EQ(report->to, 1);
  EXPECT_GT(report->entries_shipped + report->entries_skipped, 0u);
  EXPECT_GT(report->batches, 0u);
  EXPECT_GT(report->rows_deleted, 0u);

  // Ownership, epoch, and the network meter all moved.
  EXPECT_EQ(cluster.OwnerOf(a->pnode), 1);
  EXPECT_GT(cluster.shard_map().epoch(), epoch);
  EXPECT_GT(cluster.network().stats().round_trips, trips);
  EXPECT_EQ(cluster.migration_stats().migrations, 1u);

  // The destination now answers for /a: records and the reverse edge to /b.
  EXPECT_FALSE(cluster.shard_db(1).RecordsOfAllVersions(a->pnode).empty());
  auto outputs = cluster.shard_db(1).Outputs(*a);
  ASSERT_FALSE(outputs.empty());
  EXPECT_EQ(outputs[0].pnode, b->pnode);
  // The source dropped the moved rows.
  EXPECT_TRUE(cluster.shard_db(0).RecordsOfAllVersions(a->pnode).empty());
}

TEST(ClusterTest, MigrateRangeRejectsSplitOrForeignRanges) {
  ClusterCoordinator cluster(SmallCluster(2));
  EXPECT_FALSE(cluster.MigrateRange(core::ShardSpace(7), 1).ok());
  EXPECT_FALSE(
      cluster.MigrateRange({core::ShardSpace(0).begin,
                            core::ShardSpace(1).begin + 10}, 1).ok());
  ASSERT_TRUE(cluster.MigrateRange(core::ShardSpace(0), 1).ok());
  EXPECT_FALSE(cluster.MigrateRange(core::ShardSpace(0), 5).ok());
  // Shard 1 now owns both home spaces, so this range is uniformly owned yet
  // spans a home boundary: it must be rejected before any rows ship.
  uint64_t trips = cluster.network().stats().round_trips;
  uint64_t migrations = cluster.migration_stats().migrations;
  EXPECT_FALSE(cluster
                   .MigrateRange({core::ShardSpace(0).begin,
                                  core::ShardSpace(1).begin + 10}, 0)
                   .ok());
  EXPECT_EQ(cluster.network().stats().round_trips, trips);
  EXPECT_EQ(cluster.migration_stats().migrations, migrations);
}

// Acceptance: interleave workloads, migrations, and Sync() — the federated
// query must keep matching the merged single-database answer throughout.
TEST(ClusterTest, FederatedQueriesSurviveInterleavedMigrations) {
  ClusterCoordinator cluster(SmallCluster(4));
  auto refs = BuildCrossShardChain(&cluster, 12);
  ASSERT_TRUE(cluster.WriteWithLineage(2, "/island", "iii", {}).ok());
  ASSERT_TRUE(cluster.Sync().ok());
  ExpectFederatedMatchesMerged(&cluster, "before any migration");

  // Move the prefix of shard 0's space (covering /f0, /f4) to shard 2.
  core::PnodeRange prefix{core::ShardSpace(0).begin, refs[4].pnode + 1};
  ASSERT_TRUE(cluster.MigrateRange(prefix, 2).ok());
  ExpectFederatedMatchesMerged(&cluster, "after prefix migration");

  // More workload after the migration, including writes on shard 0 that
  // disclose lineage to a migrated ancestor.
  auto extra = cluster.WriteWithLineage(0, "/extra", "eee", {refs[0]});
  ASSERT_TRUE(extra.ok());
  ASSERT_TRUE(cluster.Sync().ok());
  ExpectFederatedMatchesMerged(&cluster, "after post-migration workload");

  // Move shard 1's *entire* home space to shard 3, then keep writing on
  // shard 1: even freshly minted pnodes belong to shard 3 now.
  ASSERT_TRUE(cluster.MigrateRange(core::ShardSpace(1), 3).ok());
  auto late = cluster.WriteWithLineage(1, "/late", "lll", {*extra});
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(cluster.OwnerOf(late->pnode), 3);
  ASSERT_TRUE(cluster.Sync().ok());
  ExpectFederatedMatchesMerged(&cluster, "after whole-space migration");

  // And back again: migrating home restores the default route.
  ASSERT_TRUE(cluster.MigrateRange(core::ShardSpace(1), 1).ok());
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_EQ(cluster.OwnerOf(late->pnode), 1);
  ExpectFederatedMatchesMerged(&cluster, "after migrating home");
}

// Satellite regression: a FederatedSource created *before* a migration must
// pick up post-migration routing (it is wired to the live ShardMap).
TEST(ClusterTest, SourceCreatedBeforeMigrationRoutesThroughLiveMap) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  auto b = cluster.WriteWithLineage(1, "/b", "bbb", {*a});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cluster.Sync().ok());

  FederatedSource stale = cluster.Source(/*portal_shard=*/0);
  const std::string query =
      "select D from Provenance.file as F F.~input* as D "
      "where F.name = \"/a\"";
  auto before = RunQuery(&stale, query);
  EXPECT_FALSE(before.empty());

  ASSERT_TRUE(
      cluster.MigrateRange({a->pnode, a->pnode + 1}, 1).ok());

  // Same source object, post-migration: answers come from shard 1 now and
  // still match both the pre-migration answer and the merged view.
  auto after = RunQuery(&stale, query);
  EXPECT_EQ(after, before);
  waldo::ProvDb merged;
  cluster.MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  EXPECT_EQ(RunQuery(&merged_source, query), after);
}

// Satellite: federated queries with a non-default portal shard.
TEST(ClusterTest, NonZeroPortalShardServesLocalOpsWithoutNetwork) {
  ClusterCoordinator cluster(SmallCluster(3));
  auto refs = BuildCrossShardChain(&cluster, 9);
  ASSERT_TRUE(cluster.Sync().ok());

  waldo::ProvDb merged;
  cluster.MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  const std::string query =
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f8\"";
  auto want = RunQuery(&merged_source, query);

  for (int portal = 0; portal < 3; ++portal) {
    FederatedSource source = cluster.Source(portal);
    EXPECT_EQ(RunQuery(&source, query), want) << "portal " << portal;
    // Every portal serves its own pnodes locally and routes the rest.
    EXPECT_GT(source.stats().local_ops, 0u) << "portal " << portal;
    EXPECT_GT(source.stats().remote_ops, 0u) << "portal " << portal;
  }

  // A lookup of a portal-owned pnode is free; the same lookup from another
  // portal charges the network.
  FederatedSource portal2 = cluster.Source(2);
  uint64_t trips = cluster.network().stats().round_trips;
  portal2.Follow(refs[2], "input", /*inverse=*/false);  // /f2 lives on shard 2
  EXPECT_EQ(cluster.network().stats().round_trips, trips);
  portal2.Follow(refs[1], "input", /*inverse=*/false);  // /f1 lives on shard 1
  EXPECT_EQ(cluster.network().stats().round_trips, trips + 1);
}

// Satellite: per-shard size accessors surface in cluster stats.
TEST(ClusterTest, ShardSizesReportPerShardRecordCounts) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto refs = BuildCrossShardChain(&cluster, 6);
  ASSERT_TRUE(cluster.Sync().ok());

  auto sizes = cluster.shard_sizes();
  ASSERT_EQ(sizes.size(), 2u);
  for (int shard = 0; shard < 2; ++shard) {
    EXPECT_EQ(sizes[shard].records, cluster.shard_db(shard).RecordCount());
    EXPECT_EQ(sizes[shard].edges, cluster.shard_db(shard).EdgeCount());
    EXPECT_GT(sizes[shard].owned_rows, 0u);
  }
  // Owned rows move with a migration; totals are conserved.
  uint64_t owned_before = sizes[0].owned_rows + sizes[1].owned_rows;
  ASSERT_TRUE(cluster.MigrateRange(core::ShardSpace(0), 1).ok());
  auto after = cluster.shard_sizes();
  EXPECT_EQ(after[0].owned_rows, 0u);
  EXPECT_EQ(after[1].owned_rows, owned_before);
}

TEST(ClusterTest, RebalanceConvergesASkewedCluster) {
  ClusterCoordinator cluster(SmallCluster(4, /*batch=*/32));
  // Heavily skewed workload: every write lands on shard 0.
  std::vector<core::ObjectRef> refs;
  for (int i = 0; i < 24; ++i) {
    std::vector<core::ObjectRef> sources;
    if (i > 0) {
      sources.push_back(refs.back());
    }
    auto ref = cluster.WriteWithLineage(0, "/f" + std::to_string(i),
                                        "payload", sources);
    ASSERT_TRUE(ref.ok());
    refs.push_back(*ref);
  }
  ASSERT_TRUE(cluster.Sync().ok());

  auto before = cluster.shard_sizes();
  EXPECT_GT(before[0].owned_rows, 0u);
  EXPECT_EQ(before[1].owned_rows, 0u);

  RebalanceReport report = cluster.Rebalance(/*max_min_ratio=*/1.5);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.migrations, 0);
  EXPECT_GT(report.min_rows, 0u);
  EXPECT_LE(report.ratio, 1.5);
  EXPECT_GT(cluster.migration_stats().batches, 0u);

  // Rebalancing changed placement, not answers.
  waldo::ProvDb merged;
  cluster.MergeInto(&merged);
  pql::ProvDbSource merged_source(&merged);
  FederatedSource federated = cluster.Source(0);
  const std::string query =
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f23\"";
  EXPECT_EQ(RunQuery(&federated, query), RunQuery(&merged_source, query));
  EXPECT_GE(RunQuery(&federated, query).size(), 23u);
}

TEST(ClusterTest, RebalanceIsANoOpOnABalancedCluster) {
  ClusterCoordinator cluster(SmallCluster(2));
  BuildCrossShardChain(&cluster, 8);  // round-robin: already balanced
  ASSERT_TRUE(cluster.Sync().ok());
  RebalanceReport report = cluster.Rebalance(/*max_min_ratio=*/2.0);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.migrations, 0);
  EXPECT_EQ(cluster.migration_stats().migrations, 0u);
}

// ---- Crash consistency over the cluster journal -----------------------------

// Acceptance: a coordinator crash mid-Sync loses nothing — the journaled
// batches and unconsumed logs replay, and the federated view still equals
// the merged single-database view.
TEST(ClusterTest, CrashMidSyncRecoversToEquivalentView) {
  // Measure the crash sites of a clean sync on a twin cluster, then crash a
  // fresh identical cluster in the middle of its own sync.
  uint64_t points = 0;
  {
    ClusterCoordinator twin(SmallCluster(4, /*batch=*/4));
    BuildCrossShardChain(&twin, 12);
    uint64_t before = twin.env().crash_points_passed();
    ASSERT_TRUE(twin.Sync().ok());
    points = twin.env().crash_points_passed() - before;
  }
  ASSERT_GT(points, 2u);

  ClusterCoordinator cluster(SmallCluster(4, /*batch=*/4));
  BuildCrossShardChain(&cluster, 12);
  cluster.env().CrashAfterOps(points / 2);
  ASSERT_FALSE(cluster.Sync().ok());

  auto recovery = cluster.Recover();
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_GT(recovery->journals_scanned, 0u);
  ExpectFederatedMatchesMerged(&cluster, "after mid-sync crash recovery");
}

// Acceptance: a coordinator crash between the copy and delete phases of a
// migration leaves rows on both shards only until recovery, which rolls the
// journaled migration forward to a consistent ShardMap epoch.
TEST(ClusterTest, CrashBetweenMigrationCopyAndDeleteRollsForward) {
  ClusterCoordinator cluster(SmallCluster(2));
  auto a = cluster.WriteWithLineage(0, "/a", "aaa", {});
  ASSERT_TRUE(a.ok());
  auto b = cluster.WriteWithLineage(1, "/b", "bbb", {*a});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(cluster.Sync().ok());

  // Find the crash point between MIGRATE_COPIED and the source delete by
  // sweeping until the crash leaves rows on both shards.
  core::PnodeRange range{a->pnode, a->pnode + 1};
  uint64_t points = 0;
  {
    ClusterCoordinator twin(SmallCluster(2));
    auto ta = twin.WriteWithLineage(0, "/a", "aaa", {});
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(twin.WriteWithLineage(1, "/b", "bbb", {*ta}).ok());
    ASSERT_TRUE(twin.Sync().ok());
    uint64_t before = twin.env().crash_points_passed();
    ASSERT_TRUE(twin.MigrateRange({ta->pnode, ta->pnode + 1}, 1).ok());
    points = twin.env().crash_points_passed() - before;
  }
  bool saw_both_shards_holding_rows = false;
  for (uint64_t point = 0; point < points; ++point) {
    ClusterCoordinator crashed(SmallCluster(2));
    auto ca = crashed.WriteWithLineage(0, "/a", "aaa", {});
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(crashed.WriteWithLineage(1, "/b", "bbb", {*ca}).ok());
    ASSERT_TRUE(crashed.Sync().ok());
    crashed.env().CrashAfterOps(point);
    core::PnodeRange crashed_range{ca->pnode, ca->pnode + 1};
    ASSERT_FALSE(crashed.MigrateRange(crashed_range, 1).ok());
    // The crash may have left the copy on both shards — the inconsistency
    // the journal exists to repair.
    saw_both_shards_holding_rows =
        saw_both_shards_holding_rows ||
        (crashed.shard_db(0).RowsInRange(crashed_range.begin,
                                         crashed_range.end) > 0 &&
         crashed.shard_db(1).RowsInRange(crashed_range.begin,
                                         crashed_range.end) > 0);

    auto recovery = crashed.Recover();
    ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
    // Post-recovery: exactly one shard holds the range's rows, and the
    // owner is consistent with them.
    uint64_t on_source = crashed.shard_db(0).RowsInRange(crashed_range.begin,
                                                         crashed_range.end);
    uint64_t on_destination = crashed.shard_db(1).RowsInRange(
        crashed_range.begin, crashed_range.end);
    EXPECT_TRUE(on_source == 0 || on_destination == 0) << "point " << point;
    int owner = crashed.shard_map().OwnerOfRange(crashed_range);
    EXPECT_EQ(owner == 1 ? on_source : on_destination, 0u)
        << "point " << point;
    // Federated still equals merged for lineage through the moved object.
    waldo::ProvDb merged;
    crashed.MergeInto(&merged);
    pql::ProvDbSource merged_source(&merged);
    FederatedSource federated = crashed.Source(/*portal_shard=*/0);
    for (const char* query :
         {"select D from Provenance.file as F F.~input* as D "
          "where F.name = \"/a\"",
          "select F.name from Provenance.file as F"}) {
      auto want = RunQuery(&merged_source, query);
      EXPECT_EQ(RunQuery(&federated, query), want)
          << "point " << point << ": " << query;
      EXPECT_FALSE(want.empty()) << "point " << point << ": " << query;
    }
  }
  // The sweep must have covered the copied-but-not-deleted window.
  EXPECT_TRUE(saw_both_shards_holding_rows);
}

TEST(ClusterTest, SingleShardClusterNeedsNoNetwork) {
  ClusterCoordinator cluster(SmallCluster(1));
  BuildCrossShardChain(&cluster, 5);
  ASSERT_TRUE(cluster.Sync().ok());
  EXPECT_EQ(cluster.ingest_stats().entries_replicated, 0u);
  EXPECT_EQ(cluster.network().stats().round_trips, 0u);

  FederatedSource source = cluster.Source(0);
  pql::Engine engine(&source);
  auto result = engine.Run(
      "select Ancestor from Provenance.file as F F.input* as Ancestor "
      "where F.name = \"/f4\"");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rows.size(), 5u);
  EXPECT_EQ(cluster.network().stats().round_trips, 0u);
}

}  // namespace
}  // namespace pass::cluster
