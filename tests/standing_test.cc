// Tests for the standing-query tier: PQL queries registered once and kept
// incrementally fresh over streaming audit ingest. The invariant under test
// everywhere: after every Refresh(), a standing query's materialized result
// equals a from-scratch evaluation of the same text over a fresh federated
// source — across plain ingest rounds, live migration, and crash+Recover.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/standing.h"
#include "src/pql/eval.h"
#include "src/workloads/audit_stream.h"

namespace pass::cluster {
namespace {

using workloads::AuditStreamGenerator;
using workloads::AuditStreamOptions;

ClusterOptions SmallCluster(int shards) {
  ClusterOptions options;
  options.shards = shards;
  options.ingest_batch_records = 16;
  return options;
}

AuditStreamOptions SmallStream() {
  AuditStreamOptions options;
  options.processes_per_shard = 2;
  options.reads_per_process = 1;
  options.taint_sources = 1;
  options.taint_fraction = 0.5;
  options.cross_shard_fraction = 0.5;
  return options;
}

std::set<std::string> RowSet(const pql::QueryResult& result) {
  std::set<std::string> rows;
  for (const auto& row : result.rows) {
    std::string line;
    for (const pql::Value& value : row) {
      line += value.ToString();
      line += '|';
    }
    rows.insert(line);
  }
  return rows;
}

// The naive baseline: re-evaluate the text from scratch over a fresh
// federated source wired to the live map.
std::set<std::string> FullAnswer(ClusterCoordinator* cluster,
                                 const std::string& query) {
  FederatedSource source = cluster->Source();
  pql::Engine engine(&source);
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? RowSet(*result) : std::set<std::string>{};
}

std::set<std::string> StandingAnswer(const StandingQueryTier& tier,
                                     uint64_t id) {
  auto result = tier.ResultOf(id);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? RowSet(*result) : std::set<std::string>{};
}

TEST(StandingQueryTest, IncrementalMatchesFullEvalEachRound) {
  ClusterCoordinator cluster(SmallCluster(2));
  AuditStreamGenerator stream(&cluster, SmallStream());
  ASSERT_TRUE(stream.SeedTaintSources().ok());

  StandingQueryTier tier(&cluster);
  pql::QueryOptions options;
  options.trace_label = "taint-watch";
  auto descend = tier.Register(AuditStreamGenerator::TaintDescendantQuery(),
                               options);
  auto ancestry = tier.Register(AuditStreamGenerator::TaintAncestryQuery());
  ASSERT_TRUE(descend.ok());
  ASSERT_TRUE(ancestry.ok());
  EXPECT_TRUE(*tier.IsIncremental(*descend));
  EXPECT_TRUE(*tier.IsIncremental(*ancestry));

  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(stream.StreamRound().ok());
    auto notes = tier.Refresh();
    ASSERT_TRUE(notes.ok()) << notes.status().ToString();
    EXPECT_EQ(StandingAnswer(tier, *descend),
              FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()))
        << "round " << round;
    EXPECT_EQ(StandingAnswer(tier, *ancestry),
              FullAnswer(&cluster, AuditStreamGenerator::TaintAncestryQuery()))
        << "round " << round;
  }
  // Only the registration seeds ran as full evaluations.
  EXPECT_GT(tier.stats().incremental_evals, 0u);
  EXPECT_EQ(tier.stats().full_evals, 0u);
  EXPECT_GT(tier.stats().frontier_entries, 0u);

  // Ground truth: every process the generator knows read taint (directly or
  // through a tainted file) is flagged by the descendant watchlist.
  std::set<std::string> flagged;
  auto result = tier.ResultOf(*descend);
  ASSERT_TRUE(result.ok());
  for (const auto& row : result->rows) {
    for (const pql::Value& value : row) {
      flagged.insert(value.ToString());
    }
  }
  EXPECT_FALSE(stream.expected_tainted_processes().empty());
  for (const std::string& name : stream.expected_tainted_processes()) {
    EXPECT_EQ(flagged.count(name), 1u) << name;
  }
}

TEST(StandingQueryTest, NotificationsAppearExactlyOnce) {
  ClusterCoordinator cluster(SmallCluster(2));
  AuditStreamGenerator stream(&cluster, SmallStream());
  ASSERT_TRUE(stream.SeedTaintSources().ok());

  StandingQueryTier tier(&cluster);
  auto id = tier.Register(AuditStreamGenerator::TaintDescendantQuery());
  ASSERT_TRUE(id.ok());

  std::set<std::string> notified;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(stream.StreamRound().ok());
    auto notes = tier.Refresh();
    ASSERT_TRUE(notes.ok());
    for (const StandingNotification& note : *notes) {
      EXPECT_EQ(note.query_id, *id);
      std::string line;
      for (const pql::Value& value : note.row) {
        line += value.ToString();
        line += '|';
      }
      // A row never notifies twice while it stays present.
      EXPECT_TRUE(notified.insert(line).second) << line;
    }
  }
  // Everything standing was notified, and nothing else.
  EXPECT_EQ(notified, StandingAnswer(tier, *id));
  EXPECT_EQ(tier.stats().notifications, notified.size());
}

TEST(StandingQueryTest, RegisterRejectsPinnedEpochConsistency) {
  ClusterCoordinator cluster(SmallCluster(2));
  StandingQueryTier tier(&cluster);
  pql::QueryOptions options;
  options.consistency = pql::Consistency::kPinnedEpoch;
  auto id = tier.Register(AuditStreamGenerator::TaintDescendantQuery(),
                          options);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), Code::kInvalidArgument);
  EXPECT_EQ(tier.query_count(), 0u);
}

TEST(StandingQueryTest, NonIncrementalShapesFallBackAndStayCorrect) {
  ClusterCoordinator cluster(SmallCluster(2));
  AuditStreamGenerator stream(&cluster, SmallStream());
  ASSERT_TRUE(stream.SeedTaintSources().ok());

  StandingQueryTier tier(&cluster);
  // A second Provenance-rooted FROM: root restriction cannot cover it, so
  // the tier must re-evaluate from scratch each refresh — and say so.
  const std::string join =
      "select F.name, T.name from Provenance.file as F Provenance.file as T "
      "where F.name = T.name and T.taint = 1";
  auto id = tier.Register(join);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(*tier.IsIncremental(*id));

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(stream.StreamRound().ok());
    ASSERT_TRUE(tier.Refresh().ok());
    EXPECT_EQ(StandingAnswer(tier, *id), FullAnswer(&cluster, join))
        << "round " << round;
  }
  EXPECT_GT(tier.stats().full_evals, 0u);
  EXPECT_EQ(tier.stats().incremental_evals, 0u);
}

TEST(StandingQueryTest, AffectedWalkOverflowFallsBackWithoutDivergence) {
  ClusterCoordinator cluster(SmallCluster(2));
  AuditStreamGenerator stream(&cluster, SmallStream());
  ASSERT_TRUE(stream.SeedTaintSources().ok());

  StandingQueryTier tier(&cluster);
  // No link steps, so the query's own evaluation never expands a closure —
  // but each round's frontier delta alone exceeds the tiny limit, forcing
  // the affected-root walk into its re-evaluate-everything fallback.
  const std::string attrs_only =
      "select F.name from Provenance.file as F where F.taint = 1";
  pql::QueryOptions tiny;
  tiny.limits.max_closure_nodes = 4;
  auto id = tier.Register(attrs_only, tiny);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(*tier.IsIncremental(*id));

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(stream.StreamRound().ok());
    ASSERT_TRUE(tier.Refresh().ok());
    EXPECT_EQ(StandingAnswer(tier, *id), FullAnswer(&cluster, attrs_only))
        << "round " << round;
  }
  EXPECT_GT(tier.stats().walk_overflows, 0u);
}

// Limits are a registration contract: when the data outgrows them, Refresh
// surfaces the evaluator's limit error (the naive baseline with the same
// limits errors identically) instead of silently truncating, and the tier
// recovers once the offending query is unregistered.
TEST(StandingQueryTest, EvalLimitErrorsSurfaceAndUnregisterRecovers) {
  ClusterCoordinator cluster(SmallCluster(2));
  AuditStreamGenerator stream(&cluster, SmallStream());
  ASSERT_TRUE(stream.SeedTaintSources().ok());

  StandingQueryTier tier(&cluster);
  pql::QueryOptions tiny;
  tiny.limits.max_closure_nodes = 1;
  auto bounded = tier.Register(AuditStreamGenerator::TaintDescendantQuery(),
                               tiny);
  auto healthy = tier.Register(AuditStreamGenerator::TaintDescendantQuery());
  ASSERT_TRUE(bounded.ok());
  ASSERT_TRUE(healthy.ok());

  ASSERT_TRUE(stream.StreamRound().ok());
  auto refreshed = tier.Refresh();
  EXPECT_FALSE(refreshed.ok());
  EXPECT_EQ(refreshed.status().code(), Code::kUnavailable);

  ASSERT_TRUE(tier.Unregister(*bounded).ok());
  ASSERT_TRUE(tier.Refresh().ok());
  EXPECT_EQ(
      StandingAnswer(tier, *healthy),
      FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()));
}

TEST(StandingQueryTest, SurvivesLiveMigrationMidStream) {
  ClusterCoordinator cluster(SmallCluster(3));
  AuditStreamGenerator stream(&cluster, SmallStream());
  ASSERT_TRUE(stream.SeedTaintSources().ok());

  StandingQueryTier tier(&cluster);
  auto id = tier.Register(AuditStreamGenerator::TaintDescendantQuery());
  ASSERT_TRUE(id.ok());
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(stream.StreamRound().ok());
    ASSERT_TRUE(tier.Refresh().ok());
  }

  // Move everything shard 0 allocated (taint source included) to shard 2,
  // then keep streaming: frontier entries for the moved range must be
  // owner-attributed through the live map.
  core::PnodeRange range{core::ShardSpace(0).begin,
                         cluster.machine(0).allocator().peek_next()};
  ASSERT_TRUE(cluster.MigrateRange(range, 2).ok());
  ASSERT_TRUE(tier.Refresh().ok());
  EXPECT_EQ(StandingAnswer(tier, *id),
            FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()));

  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(stream.StreamRound().ok());
    ASSERT_TRUE(tier.Refresh().ok());
    EXPECT_EQ(
        StandingAnswer(tier, *id),
        FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()))
        << "post-migration round " << round;
  }

  // And back again.
  ASSERT_TRUE(cluster.MigrateRange(range, 0).ok());
  ASSERT_TRUE(stream.StreamRound().ok());
  ASSERT_TRUE(tier.Refresh().ok());
  EXPECT_EQ(StandingAnswer(tier, *id),
            FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()));
}

// Crash points a clean (seed + one round + refresh, then another round)
// sequence passes inside the second round's ingest.
uint64_t CountRoundCrashPoints() {
  ClusterCoordinator cluster(SmallCluster(2));
  AuditStreamGenerator stream(&cluster, SmallStream());
  EXPECT_TRUE(stream.SeedTaintSources().ok());
  StandingQueryTier tier(&cluster);
  auto id = tier.Register(AuditStreamGenerator::TaintDescendantQuery());
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(stream.StreamRound().ok());
  EXPECT_TRUE(tier.Refresh().ok());
  uint64_t before = cluster.env().crash_points_passed();
  EXPECT_TRUE(stream.StreamRound().ok());
  return cluster.env().crash_points_passed() - before;
}

// Acceptance (journal_test style): crash the coordinator mid-ingest at a
// sweep of injection points; after Recover(), the next Refresh() must leave
// the standing result equal to a from-scratch evaluation, with no
// duplicated notifications.
TEST(StandingQueryTest, CrashDuringIngestRecoversConsistently) {
  uint64_t points = CountRoundCrashPoints();
  ASSERT_GT(points, 2u);
  uint64_t stride = points / 5 == 0 ? 1 : points / 5;

  for (uint64_t point = 0; point < points; point += stride) {
    ClusterCoordinator cluster(SmallCluster(2));
    AuditStreamGenerator stream(&cluster, SmallStream());
    ASSERT_TRUE(stream.SeedTaintSources().ok());
    StandingQueryTier tier(&cluster);
    auto id = tier.Register(AuditStreamGenerator::TaintDescendantQuery());
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(stream.StreamRound().ok());
    std::set<std::string> notified;
    auto first = tier.Refresh();
    ASSERT_TRUE(first.ok());
    for (const StandingNotification& note : *first) {
      std::string line;
      for (const pql::Value& value : note.row) {
        line += value.ToString() + "|";
      }
      notified.insert(line);
    }

    cluster.env().CrashAfterOps(point);
    Status crashed = stream.StreamRound();
    EXPECT_FALSE(crashed.ok()) << "point " << point;
    auto recovery = cluster.Recover();
    ASSERT_TRUE(recovery.ok())
        << "point " << point << ": " << recovery.status().ToString();

    auto notes = tier.Refresh();
    ASSERT_TRUE(notes.ok()) << "point " << point;
    for (const StandingNotification& note : *notes) {
      std::string line;
      for (const pql::Value& value : note.row) {
        line += value.ToString() + "|";
      }
      EXPECT_TRUE(notified.insert(line).second)
          << "duplicate notification at point " << point << ": " << line;
    }
    EXPECT_EQ(
        StandingAnswer(tier, *id),
        FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()))
        << "point " << point;
    EXPECT_EQ(notified, StandingAnswer(tier, *id)) << "point " << point;

    // The repaired cluster keeps streaming and the tier keeps up.
    ASSERT_TRUE(stream.StreamRound().ok()) << "point " << point;
    ASSERT_TRUE(tier.Refresh().ok()) << "point " << point;
    EXPECT_EQ(
        StandingAnswer(tier, *id),
        FullAnswer(&cluster, AuditStreamGenerator::TaintDescendantQuery()))
        << "point " << point;
  }
}

}  // namespace
}  // namespace pass::cluster
